//! Equivalence and specification checkers used to verify syntheses.
//!
//! The paper's constructions are verified functionally: a synthesised
//! circuit must implement its multi-controlled gate specification for every
//! computational basis state (borrowed-ancilla semantics) or for every basis
//! state with the clean ancilla in `|0⟩` (clean-ancilla semantics).

use qudit_core::math::{SquareMatrix, MATRIX_TOLERANCE};
use qudit_core::{Circuit, Dimension, QuditId, Result, SingleQuditOp};
use rand::Rng;

use crate::basis::{all_basis_states, index_to_digits};
use crate::sparse::{circuit_unitary_with, SimBackend, SimState};
use crate::statevector::circuit_unitary;

/// Specification of a multi-controlled gate `|0^k⟩-op`.
///
/// The circuit under test may be wider than `controls ∪ {target}`; every
/// additional qudit is treated as a borrowed ancilla and must be returned to
/// its initial state.
#[derive(Debug, Clone, PartialEq)]
pub struct MctSpec {
    /// The control qudits (all `|0⟩`-controls).
    pub controls: Vec<QuditId>,
    /// The target qudit.
    pub target: QuditId,
    /// The operation applied to the target when every control is `|0⟩`.
    pub op: SingleQuditOp,
}

impl MctSpec {
    /// Creates a specification for the k-Toffoli gate (`op = X01`).
    pub fn toffoli(controls: Vec<QuditId>, target: QuditId) -> Self {
        MctSpec {
            controls,
            target,
            op: SingleQuditOp::Swap(0, 1),
        }
    }

    /// Computes the expected output basis state for a given input.
    ///
    /// # Errors
    ///
    /// Returns an error if `op` is not classical.
    pub fn expected_output(&self, input: &[u32], dimension: Dimension) -> Result<Vec<u32>> {
        let mut output = input.to_vec();
        let all_zero = self.controls.iter().all(|c| input[c.index()] == 0);
        if all_zero {
            let t = self.target.index();
            output[t] = self.op.apply_level(output[t], dimension)?;
        }
        Ok(output)
    }
}

/// The outcome of a functional verification.
#[derive(Debug, Clone, PartialEq)]
pub enum Verification {
    /// Every checked input behaved as specified.
    Pass {
        /// Number of basis states checked.
        inputs_checked: usize,
    },
    /// Some input produced the wrong output.
    Fail {
        /// The offending input basis state.
        input: Vec<u32>,
        /// The expected output.
        expected: Vec<u32>,
        /// The output the circuit produced.
        actual: Vec<u32>,
    },
}

impl Verification {
    /// Returns `true` for a passing verification.
    pub fn is_pass(&self) -> bool {
        matches!(self, Verification::Pass { .. })
    }
}

/// The shared verification loop: for every generated input, compares the
/// spec's expected output against `actual_of(input, expected)`, which
/// returns the observed output digits on a mismatch and `None` on
/// agreement.
fn run_verification<I, F>(
    dimension: Dimension,
    spec: &MctSpec,
    inputs: I,
    mut actual_of: F,
) -> Result<Verification>
where
    I: IntoIterator<Item = Vec<u32>>,
    F: FnMut(&[u32], &[u32]) -> Result<Option<Vec<u32>>>,
{
    let mut checked = 0usize;
    for input in inputs {
        let expected = spec.expected_output(&input, dimension)?;
        if let Some(actual) = actual_of(&input, &expected)? {
            return Ok(Verification::Fail {
                input,
                expected,
                actual,
            });
        }
        checked += 1;
    }
    Ok(Verification::Pass {
        inputs_checked: checked,
    })
}

/// The direct (basis-propagation) checker used by the classical verifiers.
fn direct_checker(
    circuit: &Circuit,
) -> impl FnMut(&[u32], &[u32]) -> Result<Option<Vec<u32>>> + '_ {
    move |input, expected| {
        let actual = circuit.apply_to_basis(input)?;
        Ok((actual != expected).then_some(actual))
    }
}

/// The engine-routed checker used by the `_with` verifiers: simulates each
/// input on the resolved backend and reads the verdict off the final state
/// *without densifying it* — on the sparse engine a classical circuit keeps
/// each input at a single nonzero amplitude, so memory stays `O(1)` per
/// input regardless of the register size.
fn engine_checker(
    circuit: &Circuit,
    backend: SimBackend,
) -> impl FnMut(&[u32], &[u32]) -> Result<Option<Vec<u32>>> + '_ {
    let resolved = backend.resolve(circuit);
    move |input, expected| {
        let mut state = SimState::from_basis(circuit.dimension(), input, resolved)?;
        state.apply_circuit(circuit)?;
        if state.probability(expected) < 1.0 - 1e-9 {
            Ok(Some(state.dominant_basis_state()))
        } else {
            Ok(None)
        }
    }
}

/// The random basis states the sampled verifiers check: uniform draws, with
/// every other sample biased onto all-zero controls so the "fire" branch is
/// exercised even for large k.
fn sampled_inputs<'a, R: Rng>(
    dimension: Dimension,
    width: usize,
    spec: &MctSpec,
    samples: usize,
    rng: &'a mut R,
) -> impl Iterator<Item = Vec<u32>> + 'a {
    let spec_controls: Vec<qudit_core::Control> = spec
        .controls
        .iter()
        .map(|&q| qudit_core::Control::zero(q))
        .collect();
    (0..samples).map(move |sample| {
        let mut input = crate::sampling::uniform_basis_state(dimension, width, rng);
        if sample % 2 == 0 {
            crate::sampling::force_controls_matching(&mut input, &spec_controls, dimension, rng);
        }
        input
    })
}

/// Exhaustively verifies that a classical circuit implements an [`MctSpec`]
/// with borrowed-ancilla semantics (every non-target qudit restored).
///
/// # Errors
///
/// Returns an error when the circuit is non-classical or the specification
/// refers to qudits outside the circuit.
pub fn verify_mct_exhaustive(circuit: &Circuit, spec: &MctSpec) -> Result<Verification> {
    let dimension = circuit.dimension();
    run_verification(
        dimension,
        spec,
        all_basis_states(dimension, circuit.width()),
        direct_checker(circuit),
    )
}

/// Verifies an [`MctSpec`] on `samples` uniformly random basis states.
///
/// Use this for registers too large for exhaustive checking.
///
/// # Errors
///
/// Returns an error when the circuit is non-classical or the specification
/// refers to qudits outside the circuit.
pub fn verify_mct_sampled<R: Rng>(
    circuit: &Circuit,
    spec: &MctSpec,
    samples: usize,
    rng: &mut R,
) -> Result<Verification> {
    let dimension = circuit.dimension();
    let inputs: Vec<Vec<u32>> =
        sampled_inputs(dimension, circuit.width(), spec, samples, rng).collect();
    run_verification(dimension, spec, inputs, direct_checker(circuit))
}

/// Exhaustively verifies a circuit that uses one clean ancilla: only inputs
/// with the ancilla in `|0⟩` are checked, and the ancilla must be returned to
/// `|0⟩`.
///
/// # Errors
///
/// Returns an error when the circuit is non-classical or the specification
/// refers to qudits outside the circuit.
pub fn verify_mct_with_clean_ancilla(
    circuit: &Circuit,
    spec: &MctSpec,
    clean: QuditId,
) -> Result<Verification> {
    let dimension = circuit.dimension();
    run_verification(
        dimension,
        spec,
        all_basis_states(dimension, circuit.width()).filter(|input| input[clean.index()] == 0),
        direct_checker(circuit),
    )
}

/// [`verify_mct_exhaustive`], but every input is simulated through the
/// engine the [`SimBackend`] picks (`Auto` resolves via the classicality
/// scan) instead of the direct basis-state propagator.
///
/// For the classical circuits the synthesis emits, the sparse engine keeps
/// every input at a single nonzero amplitude, so the sweep stays `O(gates)`
/// time and `O(1)` memory per input while exercising the exact simulation
/// path the pipeline's checks use.
///
/// # Errors
///
/// Returns an error when the specification is non-classical or refers to
/// qudits outside the circuit.
pub fn verify_mct_exhaustive_with(
    circuit: &Circuit,
    spec: &MctSpec,
    backend: SimBackend,
) -> Result<Verification> {
    let dimension = circuit.dimension();
    run_verification(
        dimension,
        spec,
        all_basis_states(dimension, circuit.width()),
        engine_checker(circuit, backend),
    )
}

/// [`verify_mct_sampled`], but routed through the [`SimBackend`]-selected
/// engine like [`verify_mct_exhaustive_with`].
///
/// # Errors
///
/// Returns an error when the specification is non-classical or refers to
/// qudits outside the circuit.
pub fn verify_mct_sampled_with<R: Rng>(
    circuit: &Circuit,
    spec: &MctSpec,
    samples: usize,
    rng: &mut R,
    backend: SimBackend,
) -> Result<Verification> {
    let dimension = circuit.dimension();
    let inputs: Vec<Vec<u32>> =
        sampled_inputs(dimension, circuit.width(), spec, samples, rng).collect();
    run_verification(dimension, spec, inputs, engine_checker(circuit, backend))
}

/// Builds the ideal unitary of a multi-controlled single-qudit gate
/// specification on a register of the given width.
///
/// # Errors
///
/// Returns an error when the specification refers to qudits outside the
/// register.
pub fn mct_unitary(spec: &MctSpec, dimension: Dimension, width: usize) -> Result<SquareMatrix> {
    let op_matrix = spec.op.to_matrix(dimension);
    let size = dimension.register_size(width);
    let d = dimension.as_usize();
    let mut matrix = SquareMatrix::zeros(size);
    let target = spec.target.index();
    let stride = d.pow((width - 1 - target) as u32);
    for column in 0..size {
        let digits = index_to_digits(column, dimension, width);
        let fires = spec.controls.iter().all(|c| digits[c.index()] == 0);
        if !fires {
            matrix[(column, column)] = qudit_core::math::Complex::ONE;
            continue;
        }
        let t_digit = digits[target] as usize;
        let base = column - t_digit * stride;
        for row_digit in 0..d {
            let row = base + row_digit * stride;
            matrix[(row, column)] = op_matrix[(row_digit, t_digit)];
        }
    }
    Ok(matrix)
}

/// Verifies that a (possibly non-classical) circuit implements the unitary of
/// an [`MctSpec`], up to numerical tolerance, with every extra qudit acting
/// as a borrowed ancilla in the computational basis.
///
/// This builds the full `d^width` unitary; only use it for small registers.
///
/// # Errors
///
/// Returns an error when the circuit cannot be simulated.
pub fn verify_mct_unitary(circuit: &Circuit, spec: &MctSpec) -> Result<bool> {
    let expected = mct_unitary(spec, circuit.dimension(), circuit.width())?;
    let actual = circuit_unitary(circuit)?;
    Ok(actual.approx_eq(&expected, 1e-7))
}

/// Checks that two circuits implement the same unitary up to global phase.
///
/// Simulation runs on the [`Auto`](SimBackend::Auto) backend: each circuit's
/// classical prefix is walked sparsely (see
/// [`circuit_unitary`](crate::circuit_unitary())).  Use
/// [`circuits_equal_up_to_phase_with`] to force a backend.
///
/// # Errors
///
/// Returns an error when either circuit cannot be simulated.
pub fn circuits_equal_up_to_phase(a: &Circuit, b: &Circuit) -> Result<bool> {
    circuits_equal_up_to_phase_with(a, b, SimBackend::Auto)
}

/// [`circuits_equal_up_to_phase`] on an explicit simulation backend.
///
/// Under [`Auto`](SimBackend::Auto) or
/// [`Stabilizer`](SimBackend::Stabilizer), a pair of all-Clifford circuits
/// over a prime dimension is compared by exact stabilizer tableaus instead of
/// dense unitaries, which stays tractable at any register width.
///
/// # Errors
///
/// Returns an error when either circuit cannot be simulated.
pub fn circuits_equal_up_to_phase_with(
    a: &Circuit,
    b: &Circuit,
    backend: SimBackend,
) -> Result<bool> {
    if matches!(backend, SimBackend::Auto | SimBackend::Stabilizer)
        && crate::stabilizer::is_clifford_circuit(a)
        && crate::stabilizer::is_clifford_circuit(b)
    {
        return crate::stabilizer::clifford_circuits_equal(a, b);
    }
    let ua = circuit_unitary_with(a, backend)?;
    let ub = circuit_unitary_with(b, backend)?;
    Ok(ua.approx_eq_up_to_phase(&ub, MATRIX_TOLERANCE.max(1e-7)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_core::{Control, Gate};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dim(d: u32) -> Dimension {
        Dimension::new(d).unwrap()
    }

    fn macro_toffoli(d: Dimension, k: usize) -> Circuit {
        let mut c = Circuit::new(d, k + 1);
        c.push(Gate::controlled(
            SingleQuditOp::Swap(0, 1),
            QuditId::new(k),
            (0..k).map(|i| Control::zero(QuditId::new(i))).collect(),
        ))
        .unwrap();
        c
    }

    #[test]
    fn macro_toffoli_satisfies_its_own_spec() {
        let d = dim(3);
        let circuit = macro_toffoli(d, 2);
        let spec = MctSpec::toffoli(vec![QuditId::new(0), QuditId::new(1)], QuditId::new(2));
        assert!(verify_mct_exhaustive(&circuit, &spec).unwrap().is_pass());
        assert!(verify_mct_unitary(&circuit, &spec).unwrap());
    }

    #[test]
    fn wrong_circuit_is_rejected() {
        let d = dim(3);
        let circuit = macro_toffoli(d, 2);
        // Spec with swapped roles should fail.
        let spec = MctSpec::toffoli(vec![QuditId::new(0), QuditId::new(2)], QuditId::new(1));
        let verdict = verify_mct_exhaustive(&circuit, &spec).unwrap();
        assert!(!verdict.is_pass());
        if let Verification::Fail {
            input,
            expected,
            actual,
        } = verdict
        {
            assert_ne!(expected, actual);
            assert_eq!(input.len(), 3);
        }
    }

    #[test]
    fn sampled_verification_agrees_with_exhaustive() {
        let d = dim(3);
        let circuit = macro_toffoli(d, 3);
        let spec = MctSpec::toffoli(
            vec![QuditId::new(0), QuditId::new(1), QuditId::new(2)],
            QuditId::new(3),
        );
        let mut rng = StdRng::seed_from_u64(7);
        assert!(verify_mct_sampled(&circuit, &spec, 64, &mut rng)
            .unwrap()
            .is_pass());
    }

    #[test]
    fn clean_ancilla_semantics_ignores_nonzero_ancilla_inputs() {
        let d = dim(3);
        // A circuit that garbles the ancilla whenever it starts in |1⟩ is
        // still accepted by the clean-ancilla check, because only ancilla
        // inputs equal to |0⟩ are part of the contract.
        let mut circuit = macro_toffoli(d, 2).widened(4).unwrap();
        circuit
            .push(Gate::controlled(
                SingleQuditOp::Add(1),
                QuditId::new(3),
                vec![Control::level(QuditId::new(0), 1)],
            ))
            .unwrap();
        let spec = MctSpec::toffoli(vec![QuditId::new(0), QuditId::new(1)], QuditId::new(2));
        // Borrowed semantics fail (the extra qudit is modified for some inputs)…
        assert!(!verify_mct_exhaustive(&circuit, &spec).unwrap().is_pass());
        // …but clean-ancilla semantics still hold? No: the ancilla is changed
        // even when it starts in |0⟩ (whenever x0 = 1), so this also fails.
        assert!(
            !verify_mct_with_clean_ancilla(&circuit, &spec, QuditId::new(3))
                .unwrap()
                .is_pass()
        );
        // The untouched widened circuit satisfies both contracts.
        let clean_circuit = macro_toffoli(d, 2).widened(4).unwrap();
        assert!(verify_mct_exhaustive(&clean_circuit, &spec)
            .unwrap()
            .is_pass());
        assert!(
            verify_mct_with_clean_ancilla(&clean_circuit, &spec, QuditId::new(3))
                .unwrap()
                .is_pass()
        );
    }

    #[test]
    fn ideal_unitary_is_unitary() {
        let d = dim(3);
        let spec = MctSpec {
            controls: vec![QuditId::new(0)],
            target: QuditId::new(1),
            op: SingleQuditOp::Add(1),
        };
        let u = mct_unitary(&spec, d, 2).unwrap();
        assert!(u.is_unitary(MATRIX_TOLERANCE));
    }

    #[test]
    fn phase_equivalence_of_identical_circuits() {
        let d = dim(3);
        let a = macro_toffoli(d, 2);
        let b = macro_toffoli(d, 2);
        assert!(circuits_equal_up_to_phase(&a, &b).unwrap());
        for backend in [SimBackend::Dense, SimBackend::Sparse, SimBackend::Auto] {
            assert!(circuits_equal_up_to_phase_with(&a, &b, backend).unwrap());
        }
    }

    #[test]
    fn clifford_pairs_compare_by_tableau_at_any_width() {
        // Width 20 over qutrits: 3^20 ≈ 3.5·10⁹ — the dense unitary path
        // would need exabytes, so a verdict proves the tableau fast path ran.
        let d = dim(3);
        let width = 20;
        let mut a = Circuit::new(d, width);
        for q in 0..width - 1 {
            a.push(Gate::add_from(
                QuditId::new(q),
                false,
                QuditId::new(q + 1),
                vec![],
            ))
            .unwrap();
        }
        let b = a.clone();
        for backend in [SimBackend::Auto, SimBackend::Stabilizer] {
            assert!(circuits_equal_up_to_phase_with(&a, &b, backend).unwrap());
        }
        // Appending one more SUM gate breaks equality.
        let mut c = a.clone();
        c.push(Gate::add_from(
            QuditId::new(0),
            false,
            QuditId::new(1),
            vec![],
        ))
        .unwrap();
        assert!(!circuits_equal_up_to_phase(&a, &c).unwrap());
    }

    #[test]
    fn engine_routed_sampling_never_densifies_classical_circuits() {
        // Width 30 over qutrits: 3^30 ≈ 2·10^14 basis states — any code
        // path that densifies the state would attempt a petabyte-scale
        // allocation.  The sparse engine must verify samples in O(1) memory.
        let d = dim(3);
        let k = 29;
        let circuit = macro_toffoli(d, k);
        let spec = MctSpec::toffoli((0..k).map(QuditId::new).collect(), QuditId::new(k));
        let mut rng = StdRng::seed_from_u64(11);
        assert!(
            verify_mct_sampled_with(&circuit, &spec, 16, &mut rng, SimBackend::Auto)
                .unwrap()
                .is_pass()
        );
    }

    #[test]
    fn backend_routed_verification_agrees_with_the_direct_sweep() {
        let d = dim(3);
        let circuit = macro_toffoli(d, 2);
        let spec = MctSpec::toffoli(vec![QuditId::new(0), QuditId::new(1)], QuditId::new(2));
        for backend in [SimBackend::Dense, SimBackend::Sparse, SimBackend::Auto] {
            assert!(
                verify_mct_exhaustive_with(&circuit, &spec, backend)
                    .unwrap()
                    .is_pass(),
                "backend {backend}"
            );
        }
        // A wrong spec fails with a concrete witness on every backend.
        let wrong = MctSpec::toffoli(vec![QuditId::new(0), QuditId::new(2)], QuditId::new(1));
        for backend in [SimBackend::Dense, SimBackend::Sparse] {
            let verdict = verify_mct_exhaustive_with(&circuit, &wrong, backend).unwrap();
            match verdict {
                Verification::Fail {
                    expected, actual, ..
                } => assert_ne!(expected, actual),
                other => panic!("expected a failure, got {other:?}"),
            }
        }
        let mut rng = StdRng::seed_from_u64(9);
        assert!(
            verify_mct_sampled_with(&circuit, &spec, 32, &mut rng, SimBackend::Auto)
                .unwrap()
                .is_pass()
        );
    }
}
