//! Sparse (amplitude-map) simulation of qudit circuits, and the
//! [`SimBackend`] dispatch between the sparse and dense engines.
//!
//! The synthesis constructions of the paper spend most of their gate count
//! in long *classical prefixes*: runs of permutation gates that merely move
//! basis amplitudes around.  The dense engine
//! ([`StateVector`]) walks all `d^width` amplitudes for
//! every gate; for a (near-)basis input state almost all of that work
//! touches zeros.  [`SparseState`] stores only the nonzero amplitudes in a
//! hash map and applies classical gates as **index remappings in
//! `O(nnz)`** — independent of the register size.
//!
//! [`SimState`] is the hybrid engine used by [`simulate_basis`] and
//! [`circuit_unitary_with`]: it starts sparse and switches to the dense
//! engine when **block-level nnz tracking** predicts the sparse
//! representation stops paying.  Classical gates only move amplitudes, so
//! they stay sparse while the stored amplitudes fit the nnz budget; a
//! non-classical gate mixes each occupied target block into at most `d`
//! nonzeros, so it stays sparse exactly when that worst-case growth
//! ([`SparseState::occupied_blocks`]` × d`) still fits.  `AddFrom`-heavy
//! arithmetic circuits on superposed inputs therefore remain on the
//! `O(nnz)` fast path instead of densifying at the first unitary.  Once
//! dense, the remaining gates run through the fused panel engine
//! ([`FusedProgram`]).  All routes produce `==`-equal amplitudes (bit
//! patterns can differ only in the sign of stored IEEE zeros).
//!
//! Which engine a circuit gets is decided by [`SimBackend`]: `Dense` and
//! `Sparse` force one engine, `Auto` picks per circuit via a classicality
//! scan ([`classical_prefix_len`]).

use std::collections::HashMap;

use qudit_core::math::{Complex, SquareMatrix};
use qudit_core::pool::WorkStealingPool;
use qudit_core::{Circuit, Dimension, Gate, GateOp, QuditError, QuditId, Result, SingleQuditOp};

use crate::basis::{digits_to_index, index_to_digits};
use crate::dense::FusedProgram;
use crate::stabilizer::{self, StabilizerState};
use crate::statevector::StateVector;

/// The digit of the qudit with the given stride in a mixed-radix index.
#[inline]
fn digit_at(index: usize, stride: usize, d: usize) -> u32 {
    ((index / stride) % d) as u32
}

/// Selects the simulation engine used by [`simulate_basis`],
/// [`circuit_unitary_with`] and the `VerifyEquivalence` pass.
///
/// * [`SimBackend::Dense`] — always the in-place dense engine
///   ([`StateVector`]); cost `O(d^width)` per gate.
/// * [`SimBackend::Sparse`] — always the hybrid sparse engine
///   ([`SimState`]): classical gates cost `O(nnz)`, and the state densifies
///   at the first non-classical gate.
/// * [`SimBackend::Stabilizer`] — the generalised-Pauli tableau engine
///   ([`StabilizerState`], prime dimensions only): the classical prefix
///   runs sparse, and the rest of the circuit must classify as Clifford —
///   a non-Clifford gate is a typed [`QuditError::NonClifford`] error.
/// * [`SimBackend::Auto`] — a per-circuit scan: a fully classical circuit
///   goes sparse, a prime-dimension circuit whose non-classical suffix is
///   all-Clifford is promoted to the stabilizer engine, and anything else
///   goes sparse or dense depending on its classical prefix.
///
/// The dense and sparse engines produce `==`-equal final states (identical
/// up to the sign of stored IEEE zeros), so choosing between them is purely
/// a performance knob.  The stabilizer engine tracks the state only up to a
/// global phase, so the amplitude-exact entry points ([`simulate_basis`],
/// [`circuit_unitary_with`]) demote it to the sparse engine; it is used for
/// phase-free queries (probabilities, equivalence verdicts), where it
/// agrees exactly with the other engines.
///
/// # Example
///
/// ```
/// use qudit_core::{Circuit, Dimension, Gate, QuditId, SingleQuditOp};
/// use qudit_sim::{simulate_basis, SimBackend};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = Dimension::new(3)?;
/// let mut circuit = Circuit::new(d, 4);
/// for q in 0..4 {
///     circuit.push(Gate::single(SingleQuditOp::Add(1), QuditId::new(q)))?;
/// }
/// // A classical circuit resolves to the sparse engine under `Auto`.
/// assert_eq!(SimBackend::Auto.resolve(&circuit), SimBackend::Sparse);
/// let state = simulate_basis(&circuit, &[0, 0, 0, 0], SimBackend::Auto)?;
/// assert!(state.probability(&[1, 1, 1, 1]) > 0.999);
/// // Dense and sparse agree exactly.
/// let dense = simulate_basis(&circuit, &[0, 0, 0, 0], SimBackend::Dense)?;
/// assert_eq!(state, dense);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SimBackend {
    /// The in-place dense state-vector engine.
    Dense,
    /// The sparse amplitude-map engine (densifies on non-classical gates).
    Sparse,
    /// The generalised-Pauli tableau engine (prime dimensions, Clifford
    /// circuits; see [`crate::stabilizer`]).
    Stabilizer,
    /// Per-circuit choice via a classicality/Clifford scan (the default).
    #[default]
    Auto,
}

impl SimBackend {
    /// Resolves `Auto` against a concrete circuit, returning `Dense`,
    /// `Sparse` or `Stabilizer`.
    ///
    /// A fully classical circuit picks the sparse engine (a basis input
    /// stays at one nonzero amplitude throughout, so every gate costs
    /// `O(1)`), without paying for any Clifford classification.  A circuit
    /// with a non-classical suffix is promoted to the stabilizer engine
    /// when the dimension is prime and every suffix gate classifies as
    /// Clifford (the classical prefix still runs sparse there); otherwise
    /// the old rule applies — sparse with a non-empty classical prefix,
    /// dense without.
    ///
    /// # Example
    ///
    /// ```
    /// use qudit_core::{Circuit, Dimension, Gate, QuditId, SingleQuditOp};
    /// use qudit_sim::SimBackend;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let d = Dimension::new(3)?;
    /// let empty = Circuit::new(d, 2);
    /// assert_eq!(SimBackend::Auto.resolve(&empty), SimBackend::Dense);
    /// assert_eq!(SimBackend::Sparse.resolve(&empty), SimBackend::Sparse);
    /// # Ok(())
    /// # }
    /// ```
    pub fn resolve(self, circuit: &Circuit) -> SimBackend {
        match self {
            SimBackend::Dense => SimBackend::Dense,
            SimBackend::Sparse => SimBackend::Sparse,
            SimBackend::Stabilizer => SimBackend::Stabilizer,
            SimBackend::Auto => {
                let prefix = classical_prefix_len(circuit);
                if prefix < circuit.len()
                    && circuit.dimension().is_prime()
                    && circuit.gates()[prefix..]
                        .iter()
                        .all(|gate| stabilizer::is_clifford_gate(gate, circuit.dimension()))
                {
                    return SimBackend::Stabilizer;
                }
                if prefix > 0 {
                    SimBackend::Sparse
                } else {
                    SimBackend::Dense
                }
            }
        }
    }

    /// A short lowercase label (`"dense"`, `"sparse"`, `"stabilizer"`,
    /// `"auto"`) for tables and benchmarks.
    pub fn label(self) -> &'static str {
        match self {
            SimBackend::Dense => "dense",
            SimBackend::Sparse => "sparse",
            SimBackend::Stabilizer => "stabilizer",
            SimBackend::Auto => "auto",
        }
    }
}

impl std::fmt::Display for SimBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The number of leading classical (permutation) gates of a circuit — the
/// classicality scan behind [`SimBackend::Auto`].
///
/// # Example
///
/// ```
/// use qudit_core::math::{Complex, SquareMatrix};
/// use qudit_core::{Circuit, Dimension, Gate, QuditId, SingleQuditOp};
/// use qudit_sim::classical_prefix_len;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = Dimension::new(3)?;
/// // A Hadamard-like mix on levels 0 and 1 — not a permutation.
/// let s = 1.0 / 2.0f64.sqrt();
/// let mut mix = SquareMatrix::identity(3);
/// mix[(0, 0)] = Complex::from_real(s);
/// mix[(0, 1)] = Complex::from_real(s);
/// mix[(1, 0)] = Complex::from_real(s);
/// mix[(1, 1)] = Complex::from_real(-s);
///
/// let mut circuit = Circuit::new(d, 1);
/// circuit.push(Gate::single(SingleQuditOp::Add(1), QuditId::new(0)))?;
/// circuit.push(Gate::single(SingleQuditOp::Unitary(mix), QuditId::new(0)))?;
/// circuit.push(Gate::single(SingleQuditOp::Add(2), QuditId::new(0)))?;
/// assert_eq!(classical_prefix_len(&circuit), 1);
/// # Ok(())
/// # }
/// ```
pub fn classical_prefix_len(circuit: &Circuit) -> usize {
    circuit
        .gates()
        .iter()
        .take_while(|gate| gate.is_classical())
        .count()
}

/// A sparse state over `width` qudits of dimension `d`: only the nonzero
/// amplitudes are stored, keyed by basis-state index.
///
/// Classical gates are applied as index remappings in `O(nnz)`; general
/// single-qudit unitaries are applied block-sparse in `O(nnz · d)` (only
/// target-stride blocks that carry amplitude are mixed).  For the hybrid
/// sparse-then-dense engine most callers want, see [`SimState`].
///
/// # Example
///
/// ```
/// use qudit_core::{Circuit, Control, Dimension, Gate, QuditId, SingleQuditOp};
/// use qudit_sim::SparseState;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = Dimension::new(3)?;
/// let mut circuit = Circuit::new(d, 3);
/// circuit.push(Gate::controlled(
///     SingleQuditOp::Add(2),
///     QuditId::new(2),
///     vec![Control::zero(QuditId::new(0))],
/// ))?;
///
/// let mut state = SparseState::from_basis(d, &[0, 1, 0])?;
/// state.apply_circuit(&circuit)?;
/// // A classical circuit keeps a basis state at a single nonzero amplitude.
/// assert_eq!(state.nnz(), 1);
/// assert!(state.probability(&[0, 1, 2]) > 0.999);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseState {
    dimension: Dimension,
    width: usize,
    amplitudes: HashMap<usize, Complex>,
}

impl SparseState {
    /// Creates the all-zeros basis state `|0…0⟩`.
    pub fn new(dimension: Dimension, width: usize) -> Self {
        let mut amplitudes = HashMap::with_capacity(1);
        amplitudes.insert(0, Complex::ONE);
        SparseState {
            dimension,
            width,
            amplitudes,
        }
    }

    /// Creates the basis state with the given digits.
    ///
    /// # Errors
    ///
    /// Returns an error when a digit is out of range.
    pub fn from_basis(dimension: Dimension, digits: &[u32]) -> Result<Self> {
        for &digit in digits {
            dimension.check_level(digit)?;
        }
        let mut amplitudes = HashMap::with_capacity(1);
        amplitudes.insert(digits_to_index(digits, dimension), Complex::ONE);
        Ok(SparseState {
            dimension,
            width: digits.len(),
            amplitudes,
        })
    }

    /// Creates a sparse state from a dense one, keeping the nonzero
    /// amplitudes.
    pub fn from_statevector(state: &StateVector) -> Self {
        let amplitudes = state
            .amplitudes()
            .iter()
            .enumerate()
            .filter(|(_, amp)| **amp != Complex::ZERO)
            .map(|(index, amp)| (index, *amp))
            .collect();
        SparseState {
            dimension: state.dimension(),
            width: state.width(),
            amplitudes,
        }
    }

    /// Densifies into a [`StateVector`].
    pub fn to_statevector(&self) -> StateVector {
        let size = self.dimension.register_size(self.width);
        let mut amplitudes = vec![Complex::ZERO; size];
        for (&index, &amp) in &self.amplitudes {
            amplitudes[index] = amp;
        }
        StateVector::from_amplitudes(self.dimension, self.width, amplitudes)
            .expect("sparse indices are in range by construction")
    }

    /// The qudit dimension.
    pub fn dimension(&self) -> Dimension {
        self.dimension
    }

    /// The number of qudits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of stored (nonzero) amplitudes.
    pub fn nnz(&self) -> usize {
        self.amplitudes.len()
    }

    /// The fraction of basis states carrying amplitude (`nnz / d^width`).
    pub fn density(&self) -> f64 {
        self.nnz() as f64 / self.dimension.register_size(self.width) as f64
    }

    /// The amplitude of a basis state (zero when not stored).
    pub fn amplitude(&self, digits: &[u32]) -> Complex {
        self.amplitudes
            .get(&digits_to_index(digits, self.dimension))
            .copied()
            .unwrap_or(Complex::ZERO)
    }

    /// The probability of measuring a basis state.
    pub fn probability(&self, digits: &[u32]) -> f64 {
        self.amplitude(digits).norm_sqr()
    }

    /// The squared norm of the state (should be 1 for a physical state).
    pub fn norm_sqr(&self) -> f64 {
        self.amplitudes.values().map(|a| a.norm_sqr()).sum()
    }

    /// If the state is a single basis state (up to global phase), returns
    /// its digits.
    pub fn as_basis_state(&self) -> Option<Vec<u32>> {
        if self.amplitudes.len() != 1 {
            return None;
        }
        let (&index, amp) = self.amplitudes.iter().next().expect("one entry");
        ((amp.norm_sqr() - 1.0).abs() < 1e-9)
            .then(|| index_to_digits(index, self.dimension, self.width))
    }

    /// The stride of a qudit's digit in the mixed-radix amplitude index.
    #[inline]
    fn stride_of(&self, qudit: usize) -> usize {
        self.dimension
            .as_usize()
            .pow((self.width - 1 - qudit) as u32)
    }

    /// Number of distinct target-digit blocks carrying amplitude — the
    /// work unit (and nnz growth bound) of a single-qudit unitary on this
    /// state: mixing expands each occupied block to at most `d` nonzeros.
    pub fn occupied_blocks(&self, target: QuditId) -> usize {
        let d = self.dimension.as_usize();
        let t_stride = self.stride_of(target.index());
        let mut bases: Vec<usize> = self
            .amplitudes
            .keys()
            .map(|&index| index - digit_at(index, t_stride, d) as usize * t_stride)
            .collect();
        bases.sort_unstable();
        bases.dedup();
        bases.len()
    }

    /// Applies a single gate.
    ///
    /// Classical gates (level permutations, the value-controlled shifts) are
    /// the fast path: every stored amplitude moves to its image index, so
    /// the cost is `O(nnz)` hash-map operations regardless of the register
    /// size.  Non-classical gates mix each occupied target-stride block in
    /// place (`O(nnz · d)`), which can grow `nnz` by a factor of up to `d`.
    ///
    /// # Errors
    ///
    /// Returns an error when the gate refers to qudits outside the register.
    pub fn apply_gate(&mut self, gate: &Gate) -> Result<()> {
        gate.validate(self.dimension, self.width)?;
        let d = self.dimension.as_usize();
        let t_stride = self.stride_of(gate.target().index());
        let controls: Vec<(usize, qudit_core::ControlPredicate)> = gate
            .controls()
            .iter()
            .map(|c| (self.stride_of(c.qudit.index()), c.predicate))
            .collect();
        let fires = |index: usize| {
            controls
                .iter()
                .all(|&(stride, predicate)| predicate.matches(digit_at(index, stride, d)))
        };

        match gate.op() {
            // Classical fast path: pure index remapping.  Classical gates
            // permute the basis, so distinct indices keep distinct images
            // and the remapped map has exactly the same number of entries.
            GateOp::Single(op) if op.is_classical() => {
                let mut permutation = vec![0usize; d];
                for (level, slot) in permutation.iter_mut().enumerate() {
                    *slot = op.apply_level(level as u32, self.dimension)? as usize;
                }
                self.remap(|index| {
                    if !fires(index) {
                        return index;
                    }
                    let t_digit = digit_at(index, t_stride, d) as usize;
                    index - t_digit * t_stride + permutation[t_digit] * t_stride
                });
            }
            GateOp::AddFrom { source, negate } => {
                let source_stride = self.stride_of(source.index());
                self.remap(|index| {
                    if !fires(index) {
                        return index;
                    }
                    let value = digit_at(index, source_stride, d) as usize;
                    let shift = if *negate { (d - value) % d } else { value };
                    let t_digit = digit_at(index, t_stride, d) as usize;
                    index - t_digit * t_stride + (t_digit + shift) % d * t_stride
                });
            }
            GateOp::Single(op) => {
                let owned_matrix: SquareMatrix;
                let matrix = match op {
                    SingleQuditOp::Unitary(matrix) => matrix,
                    other => {
                        owned_matrix = other.to_matrix(self.dimension);
                        &owned_matrix
                    }
                };
                self.mix_blocks(matrix, t_stride, &fires);
            }
        }
        Ok(())
    }

    /// Moves every stored amplitude from its index to `image(index)`.
    fn remap(&mut self, image: impl Fn(usize) -> usize) {
        let mut next = HashMap::with_capacity(self.amplitudes.len());
        for (index, amp) in self.amplitudes.drain() {
            let previous = next.insert(image(index), amp);
            debug_assert!(
                previous.is_none(),
                "classical gates permute the basis, images cannot collide"
            );
        }
        self.amplitudes = next;
    }

    /// Applies a single-qudit unitary to every occupied, firing
    /// target-stride block.
    ///
    /// The per-block arithmetic (gather the `d` amplitudes, then
    /// `out[row] = Σ_col matrix[row, col] · in[col]` in column order) matches
    /// the dense engine exactly, so occupied blocks produce bit-identical
    /// amplitudes.
    fn mix_blocks(
        &mut self,
        matrix: &SquareMatrix,
        t_stride: usize,
        fires: &impl Fn(usize) -> bool,
    ) {
        let d = self.dimension.as_usize();
        // Occupied block bases (index with the target digit zeroed), deduped.
        let mut bases: Vec<usize> = self
            .amplitudes
            .keys()
            .map(|&index| index - digit_at(index, t_stride, d) as usize * t_stride)
            .collect();
        bases.sort_unstable();
        bases.dedup();

        let mut scratch = vec![Complex::ZERO; d];
        for base in bases {
            if !fires(base) {
                continue;
            }
            for (level, slot) in scratch.iter_mut().enumerate() {
                *slot = self
                    .amplitudes
                    .remove(&(base + level * t_stride))
                    .unwrap_or(Complex::ZERO);
            }
            for row in 0..d {
                let mut acc = Complex::ZERO;
                for (column, &amp) in scratch.iter().enumerate() {
                    acc += matrix[(row, column)] * amp;
                }
                if acc != Complex::ZERO {
                    self.amplitudes.insert(base + row * t_stride, acc);
                }
            }
        }
    }

    /// Applies every gate of a circuit in order.
    ///
    /// # Errors
    ///
    /// Returns an error when the circuit does not match the register or a
    /// gate is invalid.
    pub fn apply_circuit(&mut self, circuit: &Circuit) -> Result<()> {
        check_register(circuit, self.dimension, self.width)?;
        for gate in circuit.gates() {
            self.apply_gate(gate)?;
        }
        Ok(())
    }
}

fn check_register(circuit: &Circuit, dimension: Dimension, width: usize) -> Result<()> {
    if circuit.dimension() != dimension {
        return Err(QuditError::IncompatibleCircuits {
            reason: "circuit and state dimensions differ".to_string(),
        });
    }
    if circuit.width() > width {
        return Err(QuditError::IncompatibleCircuits {
            reason: "circuit is wider than the state register".to_string(),
        });
    }
    Ok(())
}

/// Densify when the sparse representation stops paying for itself: a hash
/// map entry costs several times a dense slot, so beyond `size / DENSIFY_DIVISOR`
/// nonzeros the dense walk is cheaper.
const DENSIFY_DIVISOR: usize = 4;

/// Block-level nnz policy: whether the sparse engine should apply this gate
/// or densify first.
///
/// * Every gate requires the stored amplitudes to still pay for the hash
///   map: `nnz × DENSIFY_DIVISOR ≤ size`.
/// * Classical gates (including `AddFrom`) only move amplitudes — nnz
///   cannot grow, so the bound above is the whole test.
/// * A non-classical gate mixes each occupied target block into at most
///   `d` nonzeros, so it stays sparse only when that worst-case growth
///   ([`SparseState::occupied_blocks`]` × d`) still satisfies the bound.
fn sparse_can_apply(state: &SparseState, gate: &Gate) -> bool {
    let size = state.dimension().register_size(state.width());
    if state.nnz().saturating_mul(DENSIFY_DIVISOR) > size {
        return false;
    }
    if gate.is_classical() {
        return true;
    }
    state
        .occupied_blocks(gate.target())
        .saturating_mul(state.dimension().as_usize())
        .saturating_mul(DENSIFY_DIVISOR)
        <= size
}

/// The hybrid simulation engine: sparse while the block-level nnz tracking
/// says sparsity pays, dense (fused panel kernels) from then on.
///
/// The state starts in the representation the [`SimBackend`] picks and
/// switches to the dense engine when a gate would overflow the nnz budget:
/// classical gates never grow nnz, and a non-classical gate grows it to at
/// most [`SparseState::occupied_blocks`]` × d`, so `AddFrom`-heavy circuits
/// on superposed inputs stay on the `O(nnz)` fast path.  Every route
/// produces amplitudes `==`-equal to a dense gate-by-gate simulation of the
/// same circuit on the same input (stored bit patterns can differ only in
/// the sign of IEEE zeros).
///
/// # Example
///
/// ```
/// use qudit_core::{Circuit, Dimension, Gate, QuditId, SingleQuditOp};
/// use qudit_sim::{SimBackend, SimState};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = Dimension::new(3)?;
/// let mut circuit = Circuit::new(d, 3);
/// circuit.push(Gate::single(SingleQuditOp::Add(1), QuditId::new(0)))?;
///
/// let mut state = SimState::from_basis(d, &[0, 0, 0], SimBackend::Sparse)?;
/// state.apply_circuit(&circuit)?;
/// assert!(state.is_sparse());
/// assert!(state.into_statevector().probability(&[1, 0, 0]) > 0.999);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SimState {
    repr: Repr,
    /// Set by [`SimBackend::Stabilizer`]: at the first non-classical gate
    /// (while the state is still a basis state) the engine switches to the
    /// stabilizer tableau instead of densifying, and a non-Clifford gate
    /// from then on is a typed error.
    prefer_stabilizer: bool,
}

#[derive(Debug, Clone)]
enum Repr {
    Sparse(SparseState),
    Dense(StateVector),
    Stabilizer(StabilizerState),
}

impl SimState {
    /// Creates the basis state with the given digits on the requested
    /// backend ([`SimBackend::Auto`] starts sparse: a basis state is as
    /// sparse as states get; [`SimBackend::Stabilizer`] also starts sparse
    /// and switches to the tableau at the first non-classical gate, so
    /// classical prefixes keep their `O(1)`-per-gate cost).
    ///
    /// # Errors
    ///
    /// Returns an error when a digit is out of range.
    pub fn from_basis(dimension: Dimension, digits: &[u32], backend: SimBackend) -> Result<Self> {
        let repr = match backend {
            SimBackend::Dense => Repr::Dense(StateVector::from_basis(dimension, digits)?),
            SimBackend::Sparse | SimBackend::Stabilizer | SimBackend::Auto => {
                Repr::Sparse(SparseState::from_basis(dimension, digits)?)
            }
        };
        Ok(SimState {
            repr,
            prefer_stabilizer: backend == SimBackend::Stabilizer,
        })
    }

    /// Wraps an existing dense state, going sparse only when the backend
    /// asks for it and the state is actually sparse enough to benefit.
    pub fn from_statevector(state: StateVector, backend: SimBackend) -> Self {
        let prefer_stabilizer = backend == SimBackend::Stabilizer;
        let repr = match backend {
            SimBackend::Dense => Repr::Dense(state),
            SimBackend::Sparse | SimBackend::Stabilizer | SimBackend::Auto => {
                // Count nonzeros with a plain scan first: building the hash
                // map only to find the state too dense would waste an
                // `O(size)` allocation (dense random inputs are the common
                // case on this path).
                let size = state.dimension().register_size(state.width());
                let nnz = state
                    .amplitudes()
                    .iter()
                    .filter(|amp| **amp != Complex::ZERO)
                    .count();
                if nnz.saturating_mul(DENSIFY_DIVISOR) <= size {
                    Repr::Sparse(SparseState::from_statevector(&state))
                } else {
                    Repr::Dense(state)
                }
            }
        };
        SimState {
            repr,
            prefer_stabilizer,
        }
    }

    /// Returns `true` while the state is held in the sparse representation.
    pub fn is_sparse(&self) -> bool {
        matches!(self.repr, Repr::Sparse(_))
    }

    /// Returns `true` once the state is held as a stabilizer tableau.
    pub fn is_stabilizer(&self) -> bool {
        matches!(self.repr, Repr::Stabilizer(_))
    }

    /// Number of stored amplitudes (`d^width` once dense, the `width`
    /// generator rows for a stabilizer tableau).
    pub fn nnz(&self) -> usize {
        match &self.repr {
            Repr::Sparse(state) => state.nnz(),
            Repr::Dense(state) => state.amplitudes().len(),
            Repr::Stabilizer(state) => state.width(),
        }
    }

    /// Moves a sparse basis state onto the stabilizer tableau, or reports
    /// why it cannot (`None` when the state is no longer a basis state —
    /// the caller then falls back to densifying).
    ///
    /// # Errors
    ///
    /// Returns [`QuditError::NonClifford`] when the dimension is not prime.
    fn promote_to_stabilizer(state: &SparseState) -> Option<Result<StabilizerState>> {
        let digits = state.as_basis_state()?;
        Some(StabilizerState::from_basis(state.dimension(), &digits))
    }

    /// Applies a gate, switching from sparse to dense when the block-level
    /// nnz tracking predicts the sparse representation stops paying (see
    /// [`SparseState::occupied_blocks`]): classical gates stay sparse while
    /// the stored amplitudes fit the nnz budget, non-classical gates
    /// additionally require their worst-case growth (occupied target
    /// blocks × `d`) to fit.
    ///
    /// # Errors
    ///
    /// Returns an error when the gate refers to qudits outside the
    /// register, or — on the stabilizer backend — a typed
    /// [`QuditError::NonClifford`] when a post-prefix gate does not
    /// classify as Clifford.
    pub fn apply_gate(&mut self, gate: &Gate) -> Result<()> {
        if let Repr::Stabilizer(state) = &mut self.repr {
            let action = stabilizer::classify_gate(gate, state.dimension())?;
            state.apply_action(&action);
            return Ok(());
        }
        if let Repr::Sparse(state) = &mut self.repr {
            let stay_sparse = if self.prefer_stabilizer {
                gate.is_classical() && sparse_can_apply(state, gate)
            } else {
                sparse_can_apply(state, gate)
            };
            if stay_sparse {
                return state.apply_gate(gate);
            }
            if self.prefer_stabilizer {
                if let Some(promoted) = Self::promote_to_stabilizer(state) {
                    self.repr = Repr::Stabilizer(promoted?);
                    return self.apply_gate(gate);
                }
            }
            self.repr = Repr::Dense(state.to_statevector());
        }
        match &mut self.repr {
            Repr::Dense(state) => state.apply_gate(gate),
            Repr::Sparse(_) | Repr::Stabilizer(_) => {
                unreachable!("sparse and stabilizer cases handled above")
            }
        }
    }

    /// Applies every gate of a circuit in order: gate by gate while the
    /// sparse representation pays, then — after the densify point — the
    /// remaining gates are compiled into a [`FusedProgram`] and run through
    /// the cache-blocked dense engine in one pass.
    ///
    /// # Errors
    ///
    /// Returns an error when the circuit does not match the register or a
    /// gate is invalid.
    pub fn apply_circuit(&mut self, circuit: &Circuit) -> Result<()> {
        self.apply_circuit_on(circuit, None)
    }

    /// [`SimState::apply_circuit`] with an optional worker pool for the
    /// dense suffix: once the state densifies, the fused program fans
    /// independent amplitude panels over `pool` (see
    /// [`StateVector::apply_fused_on`]) with byte-identical results for
    /// every pool width.
    ///
    /// # Errors
    ///
    /// Returns an error when the circuit does not match the register or a
    /// gate is invalid; on the stabilizer backend, additionally a typed
    /// [`QuditError::NonClifford`] when a post-prefix gate does not
    /// classify as Clifford.
    pub fn apply_circuit_on(
        &mut self,
        circuit: &Circuit,
        pool: Option<&WorkStealingPool>,
    ) -> Result<()> {
        let (dimension, width) = match &self.repr {
            Repr::Sparse(state) => (state.dimension(), state.width()),
            Repr::Dense(state) => (state.dimension(), state.width()),
            Repr::Stabilizer(state) => (state.dimension(), state.width()),
        };
        check_register(circuit, dimension, width)?;
        let gates = circuit.gates();
        let mut next = 0;
        while next < gates.len() {
            if let Repr::Stabilizer(state) = &mut self.repr {
                // Classify the whole remaining suffix once, then fan the
                // generator rows over the pool.
                let actions = gates[next..]
                    .iter()
                    .map(|gate| stabilizer::classify_gate(gate, dimension))
                    .collect::<Result<Vec<_>>>()?;
                state.apply_actions_on(&actions, pool);
                return Ok(());
            }
            if let Repr::Sparse(state) = &mut self.repr {
                let gate = &gates[next];
                let stay_sparse = if self.prefer_stabilizer {
                    gate.is_classical() && sparse_can_apply(state, gate)
                } else {
                    sparse_can_apply(state, gate)
                };
                if stay_sparse {
                    state.apply_gate(gate)?;
                    next += 1;
                    continue;
                }
                if self.prefer_stabilizer {
                    if let Some(promoted) = Self::promote_to_stabilizer(state) {
                        self.repr = Repr::Stabilizer(promoted?);
                        continue;
                    }
                }
                self.repr = Repr::Dense(state.to_statevector());
            }
            let Repr::Dense(state) = &mut self.repr else {
                unreachable!("sparse and stabilizer cases handled above");
            };
            let program = FusedProgram::compile_gates(dimension, width, &gates[next..])?;
            return state.apply_fused_on(&program, pool);
        }
        Ok(())
    }

    /// The probability of measuring a basis state — answered from the
    /// current representation, without densifying (the stabilizer tableau
    /// answers in `O(width³)` independent of the register size).
    pub fn probability(&self, digits: &[u32]) -> f64 {
        match &self.repr {
            Repr::Sparse(state) => state.probability(digits),
            Repr::Dense(state) => state.probability(digits),
            Repr::Stabilizer(state) => state.probability(digits),
        }
    }

    /// The basis state of largest probability — the observed output when a
    /// classical circuit is simulated through this engine.  Answered from
    /// the current representation without densifying.
    pub fn dominant_basis_state(&self) -> Vec<u32> {
        let by_weight = |a: &Complex, b: &Complex| {
            a.norm_sqr()
                .partial_cmp(&b.norm_sqr())
                .expect("amplitudes are finite")
        };
        match &self.repr {
            Repr::Sparse(state) => {
                let index = state
                    .amplitudes
                    .iter()
                    .max_by(|(_, a), (_, b)| by_weight(a, b))
                    .map(|(&index, _)| index)
                    .unwrap_or(0);
                index_to_digits(index, state.dimension(), state.width())
            }
            Repr::Dense(state) => {
                let (index, _) = state
                    .amplitudes()
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| by_weight(a, b))
                    .expect("states are non-empty");
                index_to_digits(index, state.dimension(), state.width())
            }
            Repr::Stabilizer(state) => state.dominant_basis_state(),
        }
    }

    /// Densifies into a [`StateVector`].
    ///
    /// When the state is held as a stabilizer tableau, the result carries
    /// an **arbitrary global phase** (a tableau determines the state only
    /// up to phase) — which is why [`simulate_basis`] demotes the
    /// stabilizer backend to the sparse engine instead of using this.
    pub fn into_statevector(self) -> StateVector {
        match self.repr {
            Repr::Sparse(state) => state.to_statevector(),
            Repr::Dense(state) => state,
            Repr::Stabilizer(state) => state
                .to_statevector()
                .expect("stabilizer densification only fails on oversized registers"),
        }
    }
}

/// Simulates a circuit on a basis-state input using the given backend,
/// returning the (dense) final state.
///
/// `Auto` resolves per circuit via [`SimBackend::resolve`]; all three
/// backends return `==`-equal states.
///
/// # Errors
///
/// Returns an error when the input does not match the circuit's register or
/// a gate is invalid.
///
/// # Example
///
/// ```
/// use qudit_core::{Circuit, Control, Dimension, Gate, QuditId, SingleQuditOp};
/// use qudit_sim::{simulate_basis, SimBackend};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = Dimension::new(3)?;
/// let mut circuit = Circuit::new(d, 2);
/// circuit.push(Gate::controlled(
///     SingleQuditOp::Swap(0, 1),
///     QuditId::new(1),
///     vec![Control::zero(QuditId::new(0))],
/// ))?;
/// let state = simulate_basis(&circuit, &[0, 0], SimBackend::Auto)?;
/// assert!(state.probability(&[0, 1]) > 0.999);
/// # Ok(())
/// # }
/// ```
pub fn simulate_basis(
    circuit: &Circuit,
    digits: &[u32],
    backend: SimBackend,
) -> Result<StateVector> {
    simulate_basis_on(circuit, digits, backend, None)
}

/// [`simulate_basis`] with an optional worker pool for the dense phase of
/// the simulation (see [`SimState::apply_circuit_on`]); byte-identical to
/// the sequential run for every pool width.
///
/// # Errors
///
/// Returns an error when the input does not match the circuit's register or
/// a gate is invalid.
pub fn simulate_basis_on(
    circuit: &Circuit,
    digits: &[u32],
    backend: SimBackend,
    pool: Option<&WorkStealingPool>,
) -> Result<StateVector> {
    if digits.len() < circuit.width() {
        return Err(QuditError::IncompatibleCircuits {
            reason: "input state is narrower than the circuit".to_string(),
        });
    }
    // Amplitude-exact contract: a stabilizer tableau only tracks the state
    // up to a global phase, so a resolved `Stabilizer` is demoted to the
    // sparse engine here (which produces `==`-equal amplitudes to dense).
    let resolved = match backend.resolve(circuit) {
        SimBackend::Stabilizer => SimBackend::Sparse,
        other => other,
    };
    let mut state = SimState::from_basis(circuit.dimension(), digits, resolved)?;
    state.apply_circuit_on(circuit, pool)?;
    Ok(state.into_statevector())
}

/// Computes the full unitary matrix implemented by a circuit on the given
/// backend.
///
/// The matrix has size `d^width`; only use this for small registers.  All
/// backends produce `==`-equal matrices — `Sparse`/`Auto` just skip the
/// dead amplitudes during classical prefixes, which dominates the cost for
/// the paper's constructions.
///
/// # Errors
///
/// Returns an error when a gate of the circuit is invalid.
pub fn circuit_unitary_with(circuit: &Circuit, backend: SimBackend) -> Result<SquareMatrix> {
    let dimension = circuit.dimension();
    let width = circuit.width();
    let size = dimension.register_size(width);
    // Unitary extraction is amplitude-exact (column phases matter), so a
    // resolved `Stabilizer` backend is demoted to the sparse engine.
    let resolved = match backend.resolve(circuit) {
        SimBackend::Stabilizer => SimBackend::Sparse,
        other => other,
    };
    let mut matrix = SquareMatrix::zeros(size);
    for column in 0..size {
        let digits = index_to_digits(column, dimension, width);
        let mut state = SimState::from_basis(dimension, &digits, resolved)?;
        state.apply_circuit(circuit)?;
        for (row, amp) in state.into_statevector().amplitudes().iter().enumerate() {
            matrix[(row, column)] = *amp;
        }
    }
    Ok(matrix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_core::math::MATRIX_TOLERANCE;
    use qudit_core::{Control, QuditId};

    fn dim(d: u32) -> Dimension {
        Dimension::new(d).unwrap()
    }

    fn fourier(d: u32) -> SquareMatrix {
        let omega = Complex::from_phase(2.0 * std::f64::consts::PI / f64::from(d));
        let s = 1.0 / f64::from(d).sqrt();
        let mut entries = Vec::new();
        for r in 0..d {
            for c in 0..d {
                let mut w = Complex::ONE;
                for _ in 0..(r * c) {
                    w *= omega;
                }
                entries.push(w.scale(s));
            }
        }
        SquareMatrix::from_rows(d as usize, entries).unwrap()
    }

    #[test]
    fn classical_gates_stay_at_one_nonzero() {
        let d = dim(3);
        let mut circuit = Circuit::new(d, 3);
        circuit
            .push(Gate::single(SingleQuditOp::Add(2), QuditId::new(0)))
            .unwrap();
        circuit
            .push(Gate::controlled(
                SingleQuditOp::Swap(0, 1),
                QuditId::new(1),
                vec![Control::level(QuditId::new(0), 2)],
            ))
            .unwrap();
        circuit
            .push(Gate::add_from(
                QuditId::new(1),
                false,
                QuditId::new(2),
                vec![],
            ))
            .unwrap();
        let mut state = SparseState::from_basis(d, &[0, 0, 0]).unwrap();
        state.apply_circuit(&circuit).unwrap();
        assert_eq!(state.nnz(), 1);
        assert_eq!(state.as_basis_state(), Some(vec![2, 1, 1]));
        assert_eq!(
            state.to_statevector(),
            simulate_basis(&circuit, &[0, 0, 0], SimBackend::Dense).unwrap()
        );
    }

    #[test]
    fn sparse_matches_dense_on_all_basis_inputs() {
        let d = dim(3);
        let mut circuit = Circuit::new(d, 3);
        circuit
            .push(Gate::controlled(
                SingleQuditOp::Add(1),
                QuditId::new(1),
                vec![Control::odd(QuditId::new(0))],
            ))
            .unwrap();
        circuit
            .push(Gate::single(
                SingleQuditOp::Unitary(fourier(3)),
                QuditId::new(2),
            ))
            .unwrap();
        circuit
            .push(Gate::single(SingleQuditOp::Add(2), QuditId::new(0)))
            .unwrap();
        for input in crate::basis::all_basis_states(d, 3) {
            let dense = simulate_basis(&circuit, &input, SimBackend::Dense).unwrap();
            let sparse = simulate_basis(&circuit, &input, SimBackend::Sparse).unwrap();
            let auto = simulate_basis(&circuit, &input, SimBackend::Auto).unwrap();
            assert_eq!(dense, sparse, "input {input:?}");
            assert_eq!(dense, auto, "input {input:?}");
        }
    }

    #[test]
    fn pure_sparse_unitary_application_matches_dense() {
        // SparseState's block-sparse mix (not the hybrid densify path) must
        // agree with the dense engine too.
        let d = dim(3);
        let gate = Gate::controlled(
            SingleQuditOp::Unitary(fourier(3)),
            QuditId::new(1),
            vec![Control::zero(QuditId::new(0))],
        );
        let mut sparse = SparseState::from_basis(d, &[0, 1]).unwrap();
        sparse.apply_gate(&gate).unwrap();
        let mut dense = StateVector::from_basis(d, &[0, 1]).unwrap();
        dense.apply_gate(&gate).unwrap();
        assert_eq!(sparse.nnz(), 3);
        assert!((sparse.norm_sqr() - 1.0).abs() < 1e-12);
        assert_eq!(sparse.to_statevector(), dense);

        // A non-firing control leaves the sparse state untouched.
        let mut idle = SparseState::from_basis(d, &[2, 1]).unwrap();
        idle.apply_gate(&gate).unwrap();
        assert_eq!(idle.as_basis_state(), Some(vec![2, 1]));
    }

    #[test]
    fn hybrid_densifies_exactly_at_the_first_non_classical_gate() {
        let d = dim(3);
        let mut state = SimState::from_basis(d, &[0, 0], SimBackend::Sparse).unwrap();
        let classical = Gate::single(SingleQuditOp::Add(1), QuditId::new(0));
        state.apply_gate(&classical).unwrap();
        assert!(state.is_sparse());
        assert_eq!(state.nnz(), 1);
        let unitary = Gate::single(SingleQuditOp::Unitary(fourier(3)), QuditId::new(1));
        state.apply_gate(&unitary).unwrap();
        assert!(!state.is_sparse());
        // Classical gates after densification stay on the dense engine.
        state.apply_gate(&classical).unwrap();
        assert!(!state.is_sparse());
    }

    #[test]
    fn auto_resolution_scans_classicality() {
        let d = dim(3);
        let mut classical = Circuit::new(d, 1);
        classical
            .push(Gate::single(SingleQuditOp::Add(1), QuditId::new(0)))
            .unwrap();
        assert_eq!(SimBackend::Auto.resolve(&classical), SimBackend::Sparse);
        assert_eq!(classical_prefix_len(&classical), 1);

        // A lone Fourier gate is Clifford, so `Auto` now promotes it to the
        // stabilizer engine.
        let mut quantum = Circuit::new(d, 1);
        quantum
            .push(Gate::single(
                SingleQuditOp::Unitary(fourier(3)),
                QuditId::new(0),
            ))
            .unwrap();
        assert_eq!(SimBackend::Auto.resolve(&quantum), SimBackend::Stabilizer);
        assert_eq!(classical_prefix_len(&quantum), 0);
        assert_eq!(SimBackend::Dense.resolve(&classical), SimBackend::Dense);

        // A fully classical circuit stays on the sparse rule even when its
        // gates are not Clifford (no classification is paid at all).
        let mut ctrl = Circuit::new(d, 2);
        ctrl.push(Gate::controlled(
            SingleQuditOp::Add(1),
            QuditId::new(1),
            vec![Control::level(QuditId::new(0), 1)],
        ))
        .unwrap();
        assert_eq!(SimBackend::Auto.resolve(&ctrl), SimBackend::Sparse);

        // A non-classical, non-Clifford opener falls back to the old dense
        // rule.
        let s = 1.0 / 2.0f64.sqrt();
        let mut mix = SquareMatrix::identity(3);
        mix[(0, 0)] = Complex::from_real(s);
        mix[(0, 1)] = Complex::from_real(s);
        mix[(1, 0)] = Complex::from_real(s);
        mix[(1, 1)] = Complex::from_real(-s);
        let mut non_clifford = Circuit::new(d, 2);
        non_clifford
            .push(Gate::single(SingleQuditOp::Unitary(mix), QuditId::new(0)))
            .unwrap();
        assert_eq!(SimBackend::Auto.resolve(&non_clifford), SimBackend::Dense);
    }

    #[test]
    fn classical_prefix_with_clifford_suffix_resolves_to_stabilizer() {
        // Regression for the resolution crossover: before the stabilizer
        // backend existed, a classical prefix forced the sparse engine,
        // which densified at the first non-classical gate.  A Clifford
        // suffix must now promote the whole circuit to the tableau.
        let d = dim(3);
        let mut circuit = Circuit::new(d, 3);
        // Classical prefix: a non-affine permutation (Swap(0, 1) is affine
        // at d = 3 but ParityFlip-style gates need not be — Add is fine).
        circuit
            .push(Gate::single(SingleQuditOp::Add(1), QuditId::new(0)))
            .unwrap();
        circuit
            .push(Gate::controlled(
                SingleQuditOp::Add(2),
                QuditId::new(1),
                vec![Control::level(QuditId::new(0), 1)],
            ))
            .unwrap();
        // Clifford (non-classical) suffix.
        circuit
            .push(Gate::single(
                SingleQuditOp::Unitary(fourier(3)),
                QuditId::new(2),
            ))
            .unwrap();
        circuit
            .push(Gate::add_from(
                QuditId::new(2),
                false,
                QuditId::new(1),
                vec![],
            ))
            .unwrap();
        assert_eq!(classical_prefix_len(&circuit), 2);
        assert_eq!(SimBackend::Auto.resolve(&circuit), SimBackend::Stabilizer);

        // The stabilizer engine walks the prefix sparsely, promotes at the
        // crossover and answers probabilities through the tableau — agreeing
        // with the dense engine on every basis input.
        for input in crate::basis::all_basis_states(d, 3) {
            let dense = simulate_basis(&circuit, &input, SimBackend::Dense).unwrap();
            let mut state = SimState::from_basis(d, &input, SimBackend::Stabilizer).unwrap();
            state.apply_circuit(&circuit).unwrap();
            assert!(state.is_stabilizer(), "input {input:?}");
            for output in crate::basis::all_basis_states(d, 3) {
                assert!(
                    (state.probability(&output) - dense.probability(&output)).abs() < 1e-9,
                    "input {input:?}, output {output:?}"
                );
            }
        }
    }

    #[test]
    fn forced_stabilizer_is_strict_after_the_prefix() {
        let d = dim(3);
        // Fully classical circuits complete sparsely without errors even
        // when the classical gates are not Clifford.
        let mut classical = Circuit::new(d, 2);
        classical
            .push(Gate::controlled(
                SingleQuditOp::Add(1),
                QuditId::new(1),
                vec![Control::level(QuditId::new(0), 1)],
            ))
            .unwrap();
        let mut state = SimState::from_basis(d, &[1, 0], SimBackend::Stabilizer).unwrap();
        state.apply_circuit(&classical).unwrap();
        assert!(state.is_sparse());
        assert!((state.probability(&[1, 1]) - 1.0).abs() < 1e-12);

        // A non-Clifford gate after the first non-classical gate is a typed
        // error, not a panic or a silent densification.
        let mut mixed = Circuit::new(d, 2);
        mixed
            .push(Gate::single(
                SingleQuditOp::Unitary(fourier(3)),
                QuditId::new(0),
            ))
            .unwrap();
        mixed
            .push(Gate::controlled(
                SingleQuditOp::Add(1),
                QuditId::new(1),
                vec![Control::level(QuditId::new(0), 1)],
            ))
            .unwrap();
        let mut state = SimState::from_basis(d, &[0, 0], SimBackend::Stabilizer).unwrap();
        let error = state.apply_circuit(&mixed).unwrap_err();
        assert!(matches!(error, QuditError::NonClifford { .. }));

        let mut gate_by_gate = SimState::from_basis(d, &[0, 0], SimBackend::Stabilizer).unwrap();
        let gates = mixed.gates().to_vec();
        gate_by_gate.apply_gate(&gates[0]).unwrap();
        assert!(gate_by_gate.is_stabilizer());
        assert!(matches!(
            gate_by_gate.apply_gate(&gates[1]),
            Err(QuditError::NonClifford { .. })
        ));
    }

    #[test]
    fn circuit_unitary_with_agrees_across_backends() {
        let d = dim(3);
        let mut circuit = Circuit::new(d, 2);
        circuit
            .push(Gate::controlled(
                SingleQuditOp::Add(1),
                QuditId::new(1),
                vec![Control::zero(QuditId::new(0))],
            ))
            .unwrap();
        circuit
            .push(Gate::single(
                SingleQuditOp::Unitary(fourier(3)),
                QuditId::new(0),
            ))
            .unwrap();
        let dense = circuit_unitary_with(&circuit, SimBackend::Dense).unwrap();
        let sparse = circuit_unitary_with(&circuit, SimBackend::Sparse).unwrap();
        assert!(dense.is_unitary(MATRIX_TOLERANCE));
        assert!(dense.approx_eq(&sparse, 0.0));
    }

    #[test]
    fn dense_initial_states_stay_on_the_dense_engine() {
        let d = dim(3);
        let size = d.register_size(2);
        let amp = Complex::from_real(1.0 / (size as f64).sqrt());
        let state = StateVector::from_amplitudes(d, 2, vec![amp; size]).unwrap();
        let sim = SimState::from_statevector(state.clone(), SimBackend::Auto);
        assert!(!sim.is_sparse(), "a uniform state must not go sparse");
        let forced = SimState::from_statevector(state, SimBackend::Dense);
        assert!(!forced.is_sparse());
    }

    #[test]
    fn register_mismatches_are_rejected() {
        let d = dim(3);
        let mut circuit = Circuit::new(dim(4), 2);
        circuit
            .push(Gate::single(SingleQuditOp::Add(1), QuditId::new(0)))
            .unwrap();
        let mut state = SparseState::from_basis(d, &[0, 0]).unwrap();
        assert!(state.apply_circuit(&circuit).is_err());
        assert!(simulate_basis(&circuit, &[0], SimBackend::Auto).is_err());
    }
}
