//! Classical (permutation) simulation of qudit circuits.
//!
//! Every circuit emitted by the synthesis algorithms of the paper consists of
//! classical gates (level permutations), so their action is fully described
//! by a permutation of the computational basis.  This simulator propagates
//! single basis states and can extract the full permutation table of a
//! circuit for equivalence checking.

use qudit_core::{Circuit, Dimension, QuditError, Result};

use crate::basis::{all_basis_states, digits_to_index};

/// A simulator that tracks a single computational basis state.
///
/// # Example
///
/// ```
/// # use qudit_core::{Circuit, Control, Dimension, Gate, QuditId, SingleQuditOp};
/// # use qudit_sim::PermutationSimulator;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = Dimension::new(3)?;
/// let mut circuit = Circuit::new(d, 2);
/// circuit.push(Gate::controlled(
///     SingleQuditOp::Add(1),
///     QuditId::new(1),
///     vec![Control::zero(QuditId::new(0))],
/// ))?;
///
/// let mut sim = PermutationSimulator::new(d, 2);
/// sim.run(&circuit)?;
/// assert_eq!(sim.state(), &[0, 1]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PermutationSimulator {
    dimension: Dimension,
    state: Vec<u32>,
}

impl PermutationSimulator {
    /// Creates a simulator in the all-zeros state.
    pub fn new(dimension: Dimension, width: usize) -> Self {
        PermutationSimulator {
            dimension,
            state: vec![0; width],
        }
    }

    /// Creates a simulator initialised to the given basis state.
    ///
    /// # Errors
    ///
    /// Returns an error when a digit is out of range for the dimension.
    pub fn from_state(dimension: Dimension, state: &[u32]) -> Result<Self> {
        for &digit in state {
            dimension.check_level(digit)?;
        }
        Ok(PermutationSimulator {
            dimension,
            state: state.to_vec(),
        })
    }

    /// The current basis state.
    pub fn state(&self) -> &[u32] {
        &self.state
    }

    /// The dimension of each qudit.
    pub fn dimension(&self) -> Dimension {
        self.dimension
    }

    /// Number of qudits tracked.
    pub fn width(&self) -> usize {
        self.state.len()
    }

    /// Runs a classical circuit on the current state.
    ///
    /// # Errors
    ///
    /// Returns an error when the circuit width or dimension does not match
    /// the simulator, or when the circuit contains a non-classical gate.
    pub fn run(&mut self, circuit: &Circuit) -> Result<()> {
        if circuit.dimension() != self.dimension {
            return Err(QuditError::IncompatibleCircuits {
                reason: format!(
                    "circuit dimension {} does not match simulator dimension {}",
                    circuit.dimension(),
                    self.dimension
                ),
            });
        }
        if circuit.width() > self.state.len() {
            return Err(QuditError::IncompatibleCircuits {
                reason: format!(
                    "circuit width {} exceeds simulator width {}",
                    circuit.width(),
                    self.state.len()
                ),
            });
        }
        for gate in circuit.gates() {
            gate.apply_to_basis(&mut self.state, self.dimension)?;
        }
        Ok(())
    }
}

/// Computes the full permutation table of a classical circuit.
///
/// Entry `i` of the result is the index of the basis state that input state
/// `i` is mapped to.
///
/// # Errors
///
/// Returns an error when the circuit contains a non-classical gate.
pub fn circuit_permutation(circuit: &Circuit) -> Result<Vec<usize>> {
    let dimension = circuit.dimension();
    let width = circuit.width();
    let mut table = Vec::with_capacity(dimension.register_size(width));
    for digits in all_basis_states(dimension, width) {
        let out = circuit.apply_to_basis(&digits)?;
        table.push(digits_to_index(&out, dimension));
    }
    Ok(table)
}

/// Checks that two classical circuits implement the same permutation.
///
/// # Errors
///
/// Returns an error when either circuit contains a non-classical gate or the
/// circuits have different dimensions/widths.
pub fn classical_circuits_equal(a: &Circuit, b: &Circuit) -> Result<bool> {
    if a.dimension() != b.dimension() || a.width() != b.width() {
        return Err(QuditError::IncompatibleCircuits {
            reason: "dimension or width mismatch".to_string(),
        });
    }
    Ok(circuit_permutation(a)? == circuit_permutation(b)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_core::{Control, Gate, QuditId, SingleQuditOp};

    fn dim(d: u32) -> Dimension {
        Dimension::new(d).unwrap()
    }

    fn controlled_add(d: Dimension) -> Circuit {
        let mut c = Circuit::new(d, 2);
        c.push(Gate::controlled(
            SingleQuditOp::Add(1),
            QuditId::new(1),
            vec![Control::zero(QuditId::new(0))],
        ))
        .unwrap();
        c
    }

    #[test]
    fn propagates_basis_states() {
        let d = dim(3);
        let circuit = controlled_add(d);
        let mut sim = PermutationSimulator::from_state(d, &[0, 2]).unwrap();
        sim.run(&circuit).unwrap();
        assert_eq!(sim.state(), &[0, 0]);
        let mut idle = PermutationSimulator::from_state(d, &[1, 2]).unwrap();
        idle.run(&circuit).unwrap();
        assert_eq!(idle.state(), &[1, 2]);
    }

    #[test]
    fn rejects_mismatched_circuits() {
        let circuit = controlled_add(dim(3));
        let mut sim = PermutationSimulator::new(dim(4), 2);
        assert!(sim.run(&circuit).is_err());
        let mut narrow = PermutationSimulator::new(dim(3), 1);
        assert!(narrow.run(&circuit).is_err());
    }

    #[test]
    fn permutation_table_is_a_permutation() {
        let circuit = controlled_add(dim(3));
        let table = circuit_permutation(&circuit).unwrap();
        let mut sorted = table.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn identical_circuits_compare_equal() {
        let a = controlled_add(dim(3));
        let b = controlled_add(dim(3));
        assert!(classical_circuits_equal(&a, &b).unwrap());
        let empty = Circuit::new(dim(3), 2);
        assert!(!classical_circuits_equal(&a, &empty).unwrap());
    }

    #[test]
    fn inverse_circuit_gives_inverse_permutation() {
        let d = dim(5);
        let mut c = Circuit::new(d, 2);
        c.push(Gate::single(SingleQuditOp::Add(3), QuditId::new(0)))
            .unwrap();
        c.push(Gate::controlled(
            SingleQuditOp::Swap(1, 4),
            QuditId::new(1),
            vec![Control::odd(QuditId::new(0))],
        ))
        .unwrap();
        let forward = circuit_permutation(&c).unwrap();
        let backward = circuit_permutation(&c.inverse()).unwrap();
        for (i, &f) in forward.iter().enumerate() {
            assert_eq!(backward[f], i);
        }
    }

    #[test]
    fn invalid_initial_state_is_rejected() {
        assert!(PermutationSimulator::from_state(dim(3), &[0, 3]).is_err());
    }
}
