//! Mixed-radix indexing of computational basis states.
//!
//! A register of `width` qudits of dimension `d` has `d^width` basis states.
//! Basis states are written as digit vectors `[x_0, x_1, …]` with qudit 0 the
//! most significant digit, matching the top-to-bottom ordering of the
//! circuit figures in the paper.

use qudit_core::Dimension;

/// Converts a digit vector to its basis-state index.
///
/// # Panics
///
/// Panics if any digit is `≥ d`.
///
/// # Example
///
/// ```
/// # use qudit_core::Dimension;
/// # use qudit_sim::basis::digits_to_index;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = Dimension::new(3)?;
/// assert_eq!(digits_to_index(&[1, 2], d), 5);
/// # Ok(())
/// # }
/// ```
pub fn digits_to_index(digits: &[u32], dimension: Dimension) -> usize {
    let d = dimension.as_usize();
    let mut index = 0usize;
    for &digit in digits {
        assert!(
            (digit as usize) < d,
            "digit {digit} out of range for dimension {d}"
        );
        index = index * d + digit as usize;
    }
    index
}

/// Converts a basis-state index to its digit vector.
///
/// # Panics
///
/// Panics if `index ≥ d^width`.
pub fn index_to_digits(index: usize, dimension: Dimension, width: usize) -> Vec<u32> {
    let d = dimension.as_usize();
    assert!(index < dimension.register_size(width), "index out of range");
    let mut digits = vec![0u32; width];
    let mut rest = index;
    for slot in digits.iter_mut().rev() {
        *slot = (rest % d) as u32;
        rest /= d;
    }
    digits
}

/// Iterates over every basis state of a register, in index order.
///
/// # Example
///
/// ```
/// # use qudit_core::Dimension;
/// # use qudit_sim::basis::all_basis_states;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = Dimension::new(3)?;
/// assert_eq!(all_basis_states(d, 2).count(), 9);
/// # Ok(())
/// # }
/// ```
pub fn all_basis_states(dimension: Dimension, width: usize) -> impl Iterator<Item = Vec<u32>> {
    let size = dimension.register_size(width);
    (0..size).map(move |i| index_to_digits(i, dimension, width))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dim(d: u32) -> Dimension {
        Dimension::new(d).unwrap()
    }

    #[test]
    fn round_trip_all_indices() {
        for d in [2u32, 3, 5] {
            let dimension = dim(d);
            for width in 0..4 {
                for index in 0..dimension.register_size(width) {
                    let digits = index_to_digits(index, dimension, width);
                    assert_eq!(digits_to_index(&digits, dimension), index);
                }
            }
        }
    }

    #[test]
    fn qudit_zero_is_most_significant() {
        let dimension = dim(3);
        assert_eq!(digits_to_index(&[2, 0], dimension), 6);
        assert_eq!(index_to_digits(6, dimension, 2), vec![2, 0]);
    }

    #[test]
    fn iteration_covers_every_state_once() {
        let dimension = dim(4);
        let states: Vec<Vec<u32>> = all_basis_states(dimension, 2).collect();
        assert_eq!(states.len(), 16);
        assert_eq!(states[0], vec![0, 0]);
        assert_eq!(states[15], vec![3, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn digit_out_of_range_panics() {
        let _ = digits_to_index(&[3], dim(3));
    }
}
