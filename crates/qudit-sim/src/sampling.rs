//! Shared basis-state sampling helpers for the equivalence checkers.
//!
//! Uniform basis states almost never satisfy a deep multi-controlled gate
//! (probability `d^-k`), so both [`crate::equivalence::verify_mct_sampled`]
//! and the sampled path of [`crate::pipeline::VerifyEquivalence`] bias a
//! fraction of their samples onto firing control patterns using these
//! helpers.

use qudit_core::{Control, Dimension};
use rand::Rng;

/// Draws a uniform basis state over `width` qudits.
pub(crate) fn uniform_basis_state<R: Rng>(
    dimension: Dimension,
    width: usize,
    rng: &mut R,
) -> Vec<u32> {
    let d = dimension.get();
    (0..width).map(|_| rng.gen_range(0..d)).collect()
}

/// Forces each control's qudit onto a uniformly chosen matching level, so
/// the sampled state exercises the controls' firing branch.
pub(crate) fn force_controls_matching<R: Rng>(
    input: &mut [u32],
    controls: &[Control],
    dimension: Dimension,
    rng: &mut R,
) {
    for control in controls {
        let levels = control.predicate.matching_levels(dimension);
        if !levels.is_empty() {
            input[control.qudit.index()] = levels[rng.gen_range(0..levels.len())];
        }
    }
}
