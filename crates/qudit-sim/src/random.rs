//! Random workload generators: Haar-like unitaries, random permutations,
//! random reversible functions and random Clifford circuits.

use qudit_core::math::{Complex, SquareMatrix};
use qudit_core::{Circuit, Control, Dimension, Gate, Permutation, QuditId, SingleQuditOp};
use rand::Rng;

/// Draws a sample from the standard normal distribution using the
/// Box–Muller transform.
fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generates a Haar-like random unitary of the given size.
///
/// A complex Gaussian matrix is orthonormalised with the Gram–Schmidt
/// procedure; this is sufficient for generating benchmark workloads.
///
/// # Panics
///
/// Panics if `size == 0`.
///
/// # Example
///
/// ```
/// # use rand::SeedableRng;
/// # use qudit_sim::random::random_unitary;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let u = random_unitary(3, &mut rng);
/// assert!(u.is_unitary(1e-8));
/// ```
pub fn random_unitary<R: Rng>(size: usize, rng: &mut R) -> SquareMatrix {
    assert!(size > 0, "unitary size must be positive");
    // Random complex Gaussian columns.
    let mut columns: Vec<Vec<Complex>> = (0..size)
        .map(|_| {
            (0..size)
                .map(|_| Complex::new(standard_normal(rng), standard_normal(rng)))
                .collect()
        })
        .collect();
    // Modified Gram–Schmidt.
    for i in 0..size {
        for j in 0..i {
            let proj: Complex = columns[j]
                .iter()
                .zip(columns[i].iter())
                .map(|(a, b)| a.conj() * *b)
                .sum();
            let col_j = columns[j].clone();
            for (value, base) in columns[i].iter_mut().zip(col_j.iter()) {
                *value -= proj * *base;
            }
        }
        let norm: f64 = columns[i].iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        assert!(norm > 1e-12, "degenerate random matrix");
        for value in &mut columns[i] {
            *value = value.scale(1.0 / norm);
        }
    }
    let mut matrix = SquareMatrix::zeros(size);
    for (c, column) in columns.iter().enumerate() {
        for (r, value) in column.iter().enumerate() {
            matrix[(r, c)] = *value;
        }
    }
    matrix
}

/// Generates a uniformly random permutation of `0..size` (Fisher–Yates).
pub fn random_permutation<R: Rng>(size: usize, rng: &mut R) -> Vec<usize> {
    let mut table: Vec<usize> = (0..size).collect();
    for i in (1..size).rev() {
        let j = rng.gen_range(0..=i);
        table.swap(i, j);
    }
    table
}

/// Generates a uniformly random `n`-variable `d`-ary reversible function,
/// given as a permutation table over the `d^n` basis states.
pub fn random_reversible_table<R: Rng>(
    dimension: Dimension,
    width: usize,
    rng: &mut R,
) -> Vec<usize> {
    random_permutation(dimension.register_size(width), rng)
}

/// Generates a random single-qudit unitary of dimension `d`.
pub fn random_single_qudit_unitary<R: Rng>(dimension: Dimension, rng: &mut R) -> SquareMatrix {
    random_unitary(dimension.as_usize(), rng)
}

/// Draws `count` distinct qudit ids from `0..width` (partial Fisher–Yates).
fn distinct_qudits<R: Rng>(width: usize, count: usize, rng: &mut R) -> Vec<QuditId> {
    assert!(
        count <= width,
        "cannot draw {count} distinct qudits from {width}"
    );
    let mut pool: Vec<usize> = (0..width).collect();
    for i in 0..count {
        let j = rng.gen_range(i..width);
        pool.swap(i, j);
    }
    pool[..count].iter().map(|&i| QuditId::new(i)).collect()
}

/// Draws a random control predicate valid for the dimension.
fn random_predicate<R: Rng>(dimension: Dimension, rng: &mut R) -> qudit_core::ControlPredicate {
    use qudit_core::ControlPredicate;
    match rng.gen_range(0u32..4) {
        0 => ControlPredicate::Level(rng.gen_range(0..dimension.get())),
        1 => ControlPredicate::Odd,
        2 => ControlPredicate::EvenNonzero,
        _ => ControlPredicate::NonZero,
    }
}

/// Draws a random classical single-qudit operation.
fn random_classical_op<R: Rng>(dimension: Dimension, rng: &mut R) -> SingleQuditOp {
    let d = dimension.get();
    match rng.gen_range(0u32..4) {
        0 => {
            let i = rng.gen_range(0..d);
            let j = (i + 1 + rng.gen_range(0..d - 1)) % d;
            SingleQuditOp::Swap(i, j)
        }
        1 => SingleQuditOp::Add(rng.gen_range(0..d)),
        2 => {
            if dimension.is_even() {
                SingleQuditOp::ParityFlipEven
            } else {
                SingleQuditOp::ParityFlipOdd
            }
        }
        _ => {
            let map = random_permutation(dimension.as_usize(), rng)
                .into_iter()
                .map(|v| v as u32)
                .collect();
            SingleQuditOp::Perm(Permutation::from_map(map).expect("random permutation is valid"))
        }
    }
}

fn random_dialect_gate<R: Rng>(
    dimension: Dimension,
    width: usize,
    classical_only: bool,
    rng: &mut R,
) -> Gate {
    // AddFrom needs two distinct wires; every other op needs one.
    let add_from = width >= 2 && rng.gen_range(0u32..4) == 0;
    let base_arity = if add_from { 2 } else { 1 };
    let max_controls = (width - base_arity).min(2);
    let n_controls = rng.gen_range(0..=max_controls);
    let qudits = distinct_qudits(width, base_arity + n_controls, rng);
    let controls: Vec<Control> = qudits[..n_controls]
        .iter()
        .map(|&q| Control::new(q, random_predicate(dimension, rng)))
        .collect();
    if add_from {
        return Gate::add_from(
            qudits[n_controls],
            rng.gen_range(0u32..2) == 1,
            qudits[n_controls + 1],
            controls,
        );
    }
    let target = qudits[n_controls];
    let op = if classical_only {
        random_classical_op(dimension, rng)
    } else {
        match rng.gen_range(0u32..6) {
            0 => SingleQuditOp::fourier(dimension),
            1 => SingleQuditOp::clifford_phase(dimension),
            2 => SingleQuditOp::Unitary(random_single_qudit_unitary(dimension, rng)),
            _ => random_classical_op(dimension, rng),
        }
    };
    Gate::controlled(op, target, controls)
}

/// Generates a random circuit exercising the *full* text-IR gate
/// repertoire: level swaps, shifts, parity flips, permutations, Fourier /
/// phase Cliffords, Haar-like unitaries and `SUM` gates, each with up to
/// two controls drawn from all four predicate kinds.
///
/// This is the workload for the `parse ∘ print = id` property suites of
/// [`qudit_core::qasm`].
///
/// # Panics
///
/// Panics when `width == 0`.
///
/// # Example
///
/// ```
/// # use rand::SeedableRng;
/// # use qudit_core::Dimension;
/// # use qudit_sim::random::random_dialect_circuit;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let circuit = random_dialect_circuit(Dimension::new(3).unwrap(), 4, 20, &mut rng);
/// let printed = qudit_core::qasm::print_circuit(&circuit);
/// assert_eq!(qudit_core::qasm::parse_source(&printed).unwrap(), circuit);
/// ```
pub fn random_dialect_circuit<R: Rng>(
    dimension: Dimension,
    width: usize,
    gates: usize,
    rng: &mut R,
) -> Circuit {
    assert!(width > 0, "register width must be positive");
    let mut circuit = Circuit::new(dimension, width);
    for _ in 0..gates {
        let gate = random_dialect_gate(dimension, width, false, rng);
        circuit
            .push(gate)
            .expect("generated gate fits the register");
    }
    circuit
}

/// Like [`random_dialect_circuit`], but restricted to classical
/// (basis-permuting) gates, so the result flows through the full
/// lowering/compilation pass stack — the workload for the
/// `compile_source(print(c)) ≡ compile(c)` property suites.
///
/// # Panics
///
/// Panics when `width == 0`.
pub fn random_classical_dialect_circuit<R: Rng>(
    dimension: Dimension,
    width: usize,
    gates: usize,
    rng: &mut R,
) -> Circuit {
    assert!(width > 0, "register width must be positive");
    let mut circuit = Circuit::new(dimension, width);
    for _ in 0..gates {
        let gate = random_dialect_gate(dimension, width, true, rng);
        circuit
            .push(gate)
            .expect("generated gate fits the register");
    }
    circuit
}

/// Generates a uniformly-gated random all-Clifford circuit over a prime
/// dimension.
///
/// Each of the `gates` gates is drawn from the generalised-Pauli Clifford
/// repertoire: the Fourier gate `F`, the phase gate `S`, cyclic shifts
/// `X+y`, affine level permutations `j ↦ a·j + b (mod d)` and — on registers
/// of two or more qudits — the `SUM` gate ([`Gate::add_from`]) between two
/// distinct random qudits.  The result always satisfies
/// [`is_clifford_circuit`](crate::stabilizer::is_clifford_circuit()), so it
/// simulates on [`SimBackend::Stabilizer`](crate::SimBackend::Stabilizer) at
/// any width.
///
/// # Panics
///
/// Panics when the dimension is not prime (the stabilizer formalism, and the
/// affine permutations drawn here, require `Z_d` to be a field) or when
/// `width == 0`.
///
/// # Example
///
/// ```
/// # use rand::SeedableRng;
/// # use qudit_core::Dimension;
/// # use qudit_sim::random::random_clifford_circuit;
/// # use qudit_sim::stabilizer::is_clifford_circuit;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let circuit = random_clifford_circuit(Dimension::new(3).unwrap(), 4, 20, &mut rng);
/// assert!(is_clifford_circuit(&circuit));
/// ```
pub fn random_clifford_circuit<R: Rng>(
    dimension: Dimension,
    width: usize,
    gates: usize,
    rng: &mut R,
) -> Circuit {
    assert!(
        dimension.is_prime(),
        "clifford circuits require a prime dimension, got {dimension}"
    );
    assert!(width > 0, "register width must be positive");
    let d = dimension.get();
    let mut circuit = Circuit::new(dimension, width);
    for _ in 0..gates {
        let qudit = QuditId::new(rng.gen_range(0..width));
        let kind = rng.gen_range(0u32..if width >= 2 { 5 } else { 4 });
        let gate = match kind {
            0 => Gate::single(SingleQuditOp::fourier(dimension), qudit),
            1 => Gate::single(SingleQuditOp::clifford_phase(dimension), qudit),
            2 => Gate::single(SingleQuditOp::Add(rng.gen_range(1..d)), qudit),
            3 => {
                // j ↦ a·j + b (mod d) is a bijection for any a ∈ 1..d when d
                // is prime, and conjugates X ↦ X^a, Z ↦ Z^{a⁻¹} up to phase.
                let a = rng.gen_range(1..d);
                let b = rng.gen_range(0..d);
                let map = (0..d).map(|j| (a * j + b) % d).collect();
                let perm = Permutation::from_map(map).expect("affine map is a bijection");
                Gate::single(SingleQuditOp::Perm(perm), qudit)
            }
            _ => {
                let target =
                    QuditId::new((qudit.index() + 1 + rng.gen_range(0..width - 1)) % width);
                Gate::add_from(qudit, rng.gen_range(0..2u32) == 1, target, vec![])
            }
        };
        circuit
            .push(gate)
            .expect("generated gate fits the register");
    }
    circuit
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_unitaries_are_unitary() {
        let mut rng = StdRng::seed_from_u64(42);
        for size in [1usize, 2, 3, 5, 8] {
            let u = random_unitary(size, &mut rng);
            assert!(u.is_unitary(1e-8), "size {size} matrix is not unitary");
        }
    }

    #[test]
    fn random_permutations_are_bijections() {
        let mut rng = StdRng::seed_from_u64(7);
        for size in [1usize, 2, 10, 27] {
            let p = random_permutation(size, &mut rng);
            let mut sorted = p.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..size).collect::<Vec<_>>());
        }
    }

    #[test]
    fn reversible_tables_have_the_right_size() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Dimension::new(3).unwrap();
        let table = random_reversible_table(d, 3, &mut rng);
        assert_eq!(table.len(), 27);
    }

    #[test]
    fn random_clifford_circuits_are_clifford() {
        use crate::stabilizer::is_clifford_circuit;
        let mut rng = StdRng::seed_from_u64(9);
        for d in [2u32, 3, 5] {
            for width in [1usize, 2, 4] {
                let circuit =
                    random_clifford_circuit(Dimension::new(d).unwrap(), width, 30, &mut rng);
                assert_eq!(circuit.len(), 30);
                assert!(is_clifford_circuit(&circuit), "d={d} width={width}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "prime dimension")]
    fn clifford_generation_rejects_composite_dimensions() {
        let mut rng = StdRng::seed_from_u64(2);
        random_clifford_circuit(Dimension::new(4).unwrap(), 2, 5, &mut rng);
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let d = Dimension::new(4).unwrap();
        let mut rng_a = StdRng::seed_from_u64(11);
        let mut rng_b = StdRng::seed_from_u64(11);
        assert_eq!(
            random_reversible_table(d, 2, &mut rng_a),
            random_reversible_table(d, 2, &mut rng_b)
        );
        let ua = random_single_qudit_unitary(d, &mut rng_a);
        let ub = random_single_qudit_unitary(d, &mut rng_b);
        assert!(ua.approx_eq(&ub, 1e-12));
    }
}
