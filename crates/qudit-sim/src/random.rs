//! Random workload generators: Haar-like unitaries, random permutations and
//! random reversible functions.

use qudit_core::math::{Complex, SquareMatrix};
use qudit_core::Dimension;
use rand::Rng;

/// Draws a sample from the standard normal distribution using the
/// Box–Muller transform.
fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generates a Haar-like random unitary of the given size.
///
/// A complex Gaussian matrix is orthonormalised with the Gram–Schmidt
/// procedure; this is sufficient for generating benchmark workloads.
///
/// # Panics
///
/// Panics if `size == 0`.
///
/// # Example
///
/// ```
/// # use rand::SeedableRng;
/// # use qudit_sim::random::random_unitary;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let u = random_unitary(3, &mut rng);
/// assert!(u.is_unitary(1e-8));
/// ```
pub fn random_unitary<R: Rng>(size: usize, rng: &mut R) -> SquareMatrix {
    assert!(size > 0, "unitary size must be positive");
    // Random complex Gaussian columns.
    let mut columns: Vec<Vec<Complex>> = (0..size)
        .map(|_| {
            (0..size)
                .map(|_| Complex::new(standard_normal(rng), standard_normal(rng)))
                .collect()
        })
        .collect();
    // Modified Gram–Schmidt.
    for i in 0..size {
        for j in 0..i {
            let proj: Complex = columns[j]
                .iter()
                .zip(columns[i].iter())
                .map(|(a, b)| a.conj() * *b)
                .sum();
            let col_j = columns[j].clone();
            for (value, base) in columns[i].iter_mut().zip(col_j.iter()) {
                *value -= proj * *base;
            }
        }
        let norm: f64 = columns[i].iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        assert!(norm > 1e-12, "degenerate random matrix");
        for value in &mut columns[i] {
            *value = value.scale(1.0 / norm);
        }
    }
    let mut matrix = SquareMatrix::zeros(size);
    for (c, column) in columns.iter().enumerate() {
        for (r, value) in column.iter().enumerate() {
            matrix[(r, c)] = *value;
        }
    }
    matrix
}

/// Generates a uniformly random permutation of `0..size` (Fisher–Yates).
pub fn random_permutation<R: Rng>(size: usize, rng: &mut R) -> Vec<usize> {
    let mut table: Vec<usize> = (0..size).collect();
    for i in (1..size).rev() {
        let j = rng.gen_range(0..=i);
        table.swap(i, j);
    }
    table
}

/// Generates a uniformly random `n`-variable `d`-ary reversible function,
/// given as a permutation table over the `d^n` basis states.
pub fn random_reversible_table<R: Rng>(
    dimension: Dimension,
    width: usize,
    rng: &mut R,
) -> Vec<usize> {
    random_permutation(dimension.register_size(width), rng)
}

/// Generates a random single-qudit unitary of dimension `d`.
pub fn random_single_qudit_unitary<R: Rng>(dimension: Dimension, rng: &mut R) -> SquareMatrix {
    random_unitary(dimension.as_usize(), rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_unitaries_are_unitary() {
        let mut rng = StdRng::seed_from_u64(42);
        for size in [1usize, 2, 3, 5, 8] {
            let u = random_unitary(size, &mut rng);
            assert!(u.is_unitary(1e-8), "size {size} matrix is not unitary");
        }
    }

    #[test]
    fn random_permutations_are_bijections() {
        let mut rng = StdRng::seed_from_u64(7);
        for size in [1usize, 2, 10, 27] {
            let p = random_permutation(size, &mut rng);
            let mut sorted = p.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..size).collect::<Vec<_>>());
        }
    }

    #[test]
    fn reversible_tables_have_the_right_size() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Dimension::new(3).unwrap();
        let table = random_reversible_table(d, 3, &mut rng);
        assert_eq!(table.len(), 27);
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let d = Dimension::new(4).unwrap();
        let mut rng_a = StdRng::seed_from_u64(11);
        let mut rng_b = StdRng::seed_from_u64(11);
        assert_eq!(
            random_reversible_table(d, 2, &mut rng_a),
            random_reversible_table(d, 2, &mut rng_b)
        );
        let ua = random_single_qudit_unitary(d, &mut rng_a);
        let ub = random_single_qudit_unitary(d, &mut rng_b);
        assert!(ua.approx_eq(&ub, 1e-12));
    }
}
