//! Cache-blocked dense simulation engine: fused gate groups applied over
//! contiguous amplitude panels, optionally fanned out over a
//! [`WorkStealingPool`].
//!
//! # Why a second dense path
//!
//! [`StateVector::apply_circuit`] is the scalar reference walk: one full
//! `d^width` traversal per gate, one amplitude at a time.  This module
//! compiles a circuit into a [`FusedProgram`] that
//!
//! 1. **fuses** runs of same-target, same-control single-qudit gates
//!    ([`qudit_core::fusion::plan_fusion`]) so each run costs *one*
//!    traversal instead of one per gate, and
//! 2. executes each fused operation with **stride-blocked panel kernels**:
//!    when the target stride is at least [`PANEL_MIN`], the `d` rows of a
//!    target block are processed in contiguous column panels of
//!    [`PANEL_WIDTH`] amplitudes through split-complex (SoA) scratch
//!    planes, turning the strided scalar walk into unit-stride loops the
//!    compiler can vectorise, and
//! 3. optionally **fans independent chunks** over a pinned
//!    [`WorkStealingPool`] once the register reaches
//!    [`PANEL_PARALLEL_THRESHOLD`] amplitudes.  Aligned power-of-`d`
//!    chunks are closed under every operation whose block divides them, so
//!    consecutive runs of such operations share a *single* pool dispatch
//!    (the scoped-thread spawn is paid per run, not per gate); operations
//!    whose block exceeds the chunk length run sequentially in between.
//!
//! # Exactness contract
//!
//! The fused engine is *exact*, not approximate:
//!
//! * Fused execution applies the member actions **in sequence** to each
//!   gathered block — the per-amplitude arithmetic is the identical
//!   floating-point expression tree as the gate-by-gate walk (matrix
//!   pre-products would reassociate the arithmetic, so they are not used).
//!   Output amplitudes are `==`-equal to [`StateVector::apply_circuit`];
//!   stored bit patterns can differ only in the sign of IEEE zeros, because
//!   the reference walk skips all-zero blocks column by column while the
//!   panel kernels skip them panel by panel.
//! * The pool-parallel path splits the vector into disjoint whole-block
//!   chunks and runs the *same* kernel on each, so it is **byte-identical**
//!   to sequential fused execution for every worker count.

use qudit_core::math::Complex;
use qudit_core::pool::{in_worker, WorkStealingPool};
use qudit_core::{
    Circuit, ControlPredicate, Dimension, Gate, GateOp, QuditError, Result, SingleQuditOp,
};

use crate::statevector::StateVector;

/// Minimum target stride for the panel (SoA) kernels; below this the rows
/// of a block are too short for vectorised column panels to pay and the
/// per-column scalar walk runs instead.
pub const PANEL_MIN: usize = 16;

/// Column-panel width of the SoA scratch planes, in amplitudes per row.
/// `d × PANEL_WIDTH` f64 pairs fit comfortably in L1 for every practical
/// `d`.
pub const PANEL_WIDTH: usize = 128;

/// Minimum register size (amplitude count) before a fused program is
/// fanned out over the worker pool: below this even a batched scoped
/// thread spawn costs more than the traversals themselves.
pub const PANEL_PARALLEL_THRESHOLD: usize = 1 << 15;

/// A `d×d` matrix in split-complex (SoA) row-major layout.
#[derive(Debug, Clone, PartialEq)]
struct MixMatrix {
    re: Vec<f64>,
    im: Vec<f64>,
}

impl MixMatrix {
    fn from_square(matrix: &qudit_core::math::SquareMatrix, d: usize) -> Self {
        let mut re = Vec::with_capacity(d * d);
        let mut im = Vec::with_capacity(d * d);
        for row in 0..d {
            for col in 0..d {
                let entry = matrix[(row, col)];
                re.push(entry.re);
                im.push(entry.im);
            }
        }
        MixMatrix { re, im }
    }
}

/// The per-block action of one member gate of a fused operation.
#[derive(Debug, Clone, PartialEq)]
enum FusedAction {
    /// Classical permutation of the target levels (`level → image`).
    Permute(Vec<usize>),
    /// Shift the target by (±) the digit of the source qudit.
    ShiftBySource { source_stride: usize, negate: bool },
    /// General single-qudit unitary.
    Mix(MixMatrix),
}

/// One fused operation: a run of same-target, same-control gates applied in
/// one traversal of the amplitude vector.
#[derive(Debug, Clone, PartialEq)]
struct FusedOp {
    /// Stride of the target digit.
    t_stride: usize,
    /// `t_stride * d`: the span of one target block.
    block: usize,
    /// Controls whose digit is constant across a block
    /// (`stride >= block`), checked once per block.
    outer_controls: Vec<(usize, ControlPredicate)>,
    /// Controls whose digit varies inside a block (`stride < t_stride`),
    /// checked per column (scalar path) or per aligned run (panel path).
    inner_controls: Vec<(usize, ControlPredicate)>,
    /// Member actions, applied in circuit order.
    actions: Vec<FusedAction>,
}

impl FusedOp {
    /// Smallest stride whose digit varies *inside* a block: inner-control
    /// strides, plus the source strides of shift-by-source actions.
    /// Digits of all of them are constant on aligned runs of this length
    /// (strides are powers of `d`, so every stride is a multiple of the
    /// smallest; strides `>= block` are constant per block and excluded).
    fn min_run_stride(&self) -> usize {
        let controls = self.inner_controls.iter().map(|&(stride, _)| stride);
        let sources = self.actions.iter().filter_map(|action| match action {
            FusedAction::ShiftBySource { source_stride, .. } if *source_stride < self.block => {
                Some(*source_stride)
            }
            _ => None,
        });
        controls.chain(sources).min().unwrap_or(usize::MAX)
    }

    /// Whether the panel kernels apply: rows long enough for column
    /// panels, and constant-digit runs (if any) at least panel-sized too.
    fn uses_panels(&self) -> bool {
        self.t_stride >= PANEL_MIN && self.min_run_stride() >= PANEL_MIN
    }
}

/// A circuit compiled for fused dense execution on a fixed register shape.
///
/// # Example
///
/// ```
/// # use qudit_core::{Circuit, Dimension, Gate, QuditId, SingleQuditOp};
/// # use qudit_sim::{FusedProgram, StateVector};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = Dimension::new(3)?;
/// let mut circuit = Circuit::new(d, 2);
/// circuit.push(Gate::single(SingleQuditOp::Add(1), QuditId::new(1)))?;
/// circuit.push(Gate::single(SingleQuditOp::Add(1), QuditId::new(1)))?;
///
/// let program = FusedProgram::compile(&circuit, 2)?;
/// assert_eq!(program.fused_gates(), 1); // two shifts, one traversal
///
/// let mut state = StateVector::new(d, 2);
/// state.apply_fused(&program)?;
/// assert!(state.probability(&[0, 2]) > 0.999);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FusedProgram {
    dimension: Dimension,
    width: usize,
    size: usize,
    source_gates: usize,
    ops: Vec<FusedOp>,
}

impl FusedProgram {
    /// Compiles a circuit for a register of `width` qudits (which may be
    /// wider than the circuit).
    ///
    /// # Errors
    ///
    /// Returns an error when the circuit is wider than the register or a
    /// gate is invalid.
    pub fn compile(circuit: &Circuit, width: usize) -> Result<Self> {
        if circuit.width() > width {
            return Err(QuditError::IncompatibleCircuits {
                reason: "circuit is wider than the state register".to_string(),
            });
        }
        Self::compile_gates(circuit.dimension(), width, circuit.gates())
    }

    /// Compiles a gate slice for a register of `width` qudits.
    ///
    /// # Errors
    ///
    /// Returns an error when a gate is invalid for the register.
    pub fn compile_gates(dimension: Dimension, width: usize, gates: &[Gate]) -> Result<Self> {
        let d = dimension.as_usize();
        let size = dimension.register_size(width);
        let stride_of = |qudit: usize| d.pow((width - 1 - qudit) as u32);
        let plan = qudit_core::fusion::plan_fusion(gates, true);
        let mut ops = Vec::with_capacity(plan.groups.len());
        for group in &plan.groups {
            let template = &gates[group.members[0]];
            template.validate(dimension, width)?;
            let t_stride = stride_of(template.target().index());
            let block = t_stride * d;
            let mut outer_controls = Vec::new();
            let mut inner_controls = Vec::new();
            for control in template.controls() {
                let stride = stride_of(control.qudit.index());
                if stride >= block {
                    outer_controls.push((stride, control.predicate));
                } else {
                    inner_controls.push((stride, control.predicate));
                }
            }
            let mut actions = Vec::with_capacity(group.members.len());
            for &index in &group.members {
                let gate = &gates[index];
                gate.validate(dimension, width)?;
                actions.push(match gate.op() {
                    GateOp::AddFrom { source, negate } => FusedAction::ShiftBySource {
                        source_stride: stride_of(source.index()),
                        negate: *negate,
                    },
                    GateOp::Single(op) if op.is_classical() => {
                        let mut permutation = vec![0usize; d];
                        for (level, slot) in permutation.iter_mut().enumerate() {
                            *slot = op.apply_level(level as u32, dimension)? as usize;
                        }
                        FusedAction::Permute(permutation)
                    }
                    GateOp::Single(SingleQuditOp::Unitary(matrix)) => {
                        FusedAction::Mix(MixMatrix::from_square(matrix, d))
                    }
                    GateOp::Single(op) => {
                        FusedAction::Mix(MixMatrix::from_square(&op.to_matrix(dimension), d))
                    }
                });
            }
            ops.push(FusedOp {
                t_stride,
                block,
                outer_controls,
                inner_controls,
                actions,
            });
        }
        Ok(FusedProgram {
            dimension,
            width,
            size,
            source_gates: gates.len(),
            ops,
        })
    }

    /// The qudit dimension the program was compiled for.
    pub fn dimension(&self) -> Dimension {
        self.dimension
    }

    /// The register width the program was compiled for.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of gates in the source circuit.
    pub fn source_gates(&self) -> usize {
        self.source_gates
    }

    /// Number of fused operations (amplitude traversals).
    pub fn traversals(&self) -> usize {
        self.ops.len()
    }

    /// Number of gates absorbed into a larger fused operation — the
    /// traversals saved relative to the gate-by-gate walk.
    pub fn fused_gates(&self) -> usize {
        self.source_gates - self.ops.len()
    }
}

/// The digit of the qudit with the given stride in a mixed-radix index.
#[inline]
fn digit_at(index: usize, stride: usize, d: usize) -> u32 {
    ((index / stride) % d) as u32
}

/// Applies one fused operation to a chunk of whole target blocks.
///
/// `start` is the chunk's offset in the full amplitude vector — control
/// digits are functions of the *absolute* index.  Sequential execution
/// passes the whole vector with `start == 0`; the pool path passes disjoint
/// block-aligned chunks, so both run the identical code on identical data
/// and produce byte-identical amplitudes.
fn apply_op_chunk(op: &FusedOp, chunk: &mut [Complex], start: usize, d: usize) {
    debug_assert_eq!(start % op.block, 0);
    debug_assert_eq!(chunk.len() % op.block, 0);
    if op.uses_panels() {
        apply_op_chunk_panels(op, chunk, start, d);
    } else {
        apply_op_chunk_scalar(op, chunk, start, d);
    }
}

/// The per-column scalar path: the reference walk of
/// `StateVector::apply_gate`, extended to apply the fused member actions in
/// sequence on the gathered block.
fn apply_op_chunk_scalar(op: &FusedOp, chunk: &mut [Complex], start: usize, d: usize) {
    let t_stride = op.t_stride;
    let mut cur = vec![Complex::ZERO; d];
    let mut next = vec![Complex::ZERO; d];
    for outer_local in (0..chunk.len()).step_by(op.block) {
        let outer = start + outer_local;
        if !op
            .outer_controls
            .iter()
            .all(|&(stride, predicate)| predicate.matches(digit_at(outer, stride, d)))
        {
            continue;
        }
        for inner in 0..t_stride {
            let base_local = outer_local + inner;
            let base = outer + inner;
            // Gather the block and skip it when it carries no amplitude —
            // exactly the reference walk's occupancy skip, leaving the
            // stored bits untouched.
            let mut occupied = false;
            for (level, slot) in cur.iter_mut().enumerate() {
                *slot = chunk[base_local + level * t_stride];
                occupied |= *slot != Complex::ZERO;
            }
            if !occupied {
                continue;
            }
            if !op
                .inner_controls
                .iter()
                .all(|&(stride, predicate)| predicate.matches(digit_at(base, stride, d)))
            {
                continue;
            }
            for action in &op.actions {
                match action {
                    FusedAction::Permute(permutation) => {
                        for (level, &image) in permutation.iter().enumerate() {
                            next[image] = cur[level];
                        }
                        std::mem::swap(&mut cur, &mut next);
                    }
                    FusedAction::ShiftBySource {
                        source_stride,
                        negate,
                    } => {
                        let value = digit_at(base, *source_stride, d) as usize;
                        let shift = if *negate { (d - value) % d } else { value };
                        if shift == 0 {
                            continue;
                        }
                        for (level, &amp) in cur.iter().enumerate() {
                            next[(level + shift) % d] = amp;
                        }
                        std::mem::swap(&mut cur, &mut next);
                    }
                    FusedAction::Mix(matrix) => {
                        for (row, slot) in next.iter_mut().enumerate() {
                            // The identical expression tree as the
                            // reference's `acc += m * amp` in column order.
                            let mut acc_re = 0.0;
                            let mut acc_im = 0.0;
                            for (column, &amp) in cur.iter().enumerate() {
                                let mr = matrix.re[row * d + column];
                                let mi = matrix.im[row * d + column];
                                acc_re += mr * amp.re - mi * amp.im;
                                acc_im += mr * amp.im + mi * amp.re;
                            }
                            *slot = Complex {
                                re: acc_re,
                                im: acc_im,
                            };
                        }
                        std::mem::swap(&mut cur, &mut next);
                    }
                }
            }
            for (level, &amp) in cur.iter().enumerate() {
                chunk[base_local + level * t_stride] = amp;
            }
        }
    }
}

/// The panel (SoA) path: the `d` rows of a target block are processed in
/// contiguous column panels through split-complex scratch planes, turning
/// every inner loop into a unit-stride `f64` loop.
fn apply_op_chunk_panels(op: &FusedOp, chunk: &mut [Complex], start: usize, d: usize) {
    let t_stride = op.t_stride;
    let run_len = op.min_run_stride().min(t_stride);
    // Split-complex scratch planes: `d` rows of up to PANEL_WIDTH columns,
    // double-buffered so member actions chain in sequence.
    let mut cur_re = vec![0.0f64; d * PANEL_WIDTH];
    let mut cur_im = vec![0.0f64; d * PANEL_WIDTH];
    let mut next_re = vec![0.0f64; d * PANEL_WIDTH];
    let mut next_im = vec![0.0f64; d * PANEL_WIDTH];
    for outer_local in (0..chunk.len()).step_by(op.block) {
        let outer = start + outer_local;
        if !op
            .outer_controls
            .iter()
            .all(|&(stride, predicate)| predicate.matches(digit_at(outer, stride, d)))
        {
            continue;
        }
        // Inner-control digits are constant on aligned runs of `run_len`
        // columns; check each run once on its first column.
        for run_start in (0..t_stride).step_by(run_len) {
            if !op.inner_controls.iter().all(|&(stride, predicate)| {
                predicate.matches(digit_at(outer + run_start, stride, d))
            }) {
                continue;
            }
            // Shift-by-source digits are also constant on the run (source
            // strides < block participate in `min_run_stride`).  Chop the
            // fired run into column panels.
            let run_end = run_start + run_len;
            for panel_start in (run_start..run_end).step_by(PANEL_WIDTH) {
                let w = PANEL_WIDTH.min(run_end - panel_start);
                let base_local = outer_local + panel_start;
                // Gather into the SoA planes; skip wholly-empty panels so
                // untouched regions keep their stored bits.
                let mut occupied = false;
                for level in 0..d {
                    let row = &chunk[base_local + level * t_stride..][..w];
                    let plane_re = &mut cur_re[level * PANEL_WIDTH..][..w];
                    let plane_im = &mut cur_im[level * PANEL_WIDTH..][..w];
                    for j in 0..w {
                        let amp = row[j];
                        plane_re[j] = amp.re;
                        plane_im[j] = amp.im;
                        occupied |= amp != Complex::ZERO;
                    }
                }
                if !occupied {
                    continue;
                }
                for action in &op.actions {
                    match action {
                        FusedAction::Permute(permutation) => {
                            for (level, &image) in permutation.iter().enumerate() {
                                next_re[image * PANEL_WIDTH..][..w]
                                    .copy_from_slice(&cur_re[level * PANEL_WIDTH..][..w]);
                                next_im[image * PANEL_WIDTH..][..w]
                                    .copy_from_slice(&cur_im[level * PANEL_WIDTH..][..w]);
                            }
                            std::mem::swap(&mut cur_re, &mut next_re);
                            std::mem::swap(&mut cur_im, &mut next_im);
                        }
                        FusedAction::ShiftBySource {
                            source_stride,
                            negate,
                        } => {
                            let value = digit_at(outer + panel_start, *source_stride, d) as usize;
                            let shift = if *negate { (d - value) % d } else { value };
                            if shift == 0 {
                                continue;
                            }
                            for level in 0..d {
                                let image = (level + shift) % d;
                                next_re[image * PANEL_WIDTH..][..w]
                                    .copy_from_slice(&cur_re[level * PANEL_WIDTH..][..w]);
                                next_im[image * PANEL_WIDTH..][..w]
                                    .copy_from_slice(&cur_im[level * PANEL_WIDTH..][..w]);
                            }
                            std::mem::swap(&mut cur_re, &mut next_re);
                            std::mem::swap(&mut cur_im, &mut next_im);
                        }
                        FusedAction::Mix(matrix) => {
                            for row in 0..d {
                                let acc_re = &mut next_re[row * PANEL_WIDTH..][..w];
                                let acc_im = &mut next_im[row * PANEL_WIDTH..][..w];
                                acc_re.fill(0.0);
                                acc_im.fill(0.0);
                                for column in 0..d {
                                    let mr = matrix.re[row * d + column];
                                    let mi = matrix.im[row * d + column];
                                    let in_re = &cur_re[column * PANEL_WIDTH..][..w];
                                    let in_im = &cur_im[column * PANEL_WIDTH..][..w];
                                    // Per element, the identical expression
                                    // tree as the reference's column-order
                                    // `acc += m * amp`, vectorised over the
                                    // panel.
                                    for j in 0..w {
                                        acc_re[j] += mr * in_re[j] - mi * in_im[j];
                                        acc_im[j] += mr * in_im[j] + mi * in_re[j];
                                    }
                                }
                            }
                            std::mem::swap(&mut cur_re, &mut next_re);
                            std::mem::swap(&mut cur_im, &mut next_im);
                        }
                    }
                }
                for level in 0..d {
                    let row = &mut chunk[base_local + level * t_stride..][..w];
                    let plane_re = &cur_re[level * PANEL_WIDTH..][..w];
                    let plane_im = &cur_im[level * PANEL_WIDTH..][..w];
                    for j in 0..w {
                        row[j] = Complex {
                            re: plane_re[j],
                            im: plane_im[j],
                        };
                    }
                }
            }
        }
    }
}

impl StateVector {
    /// Applies a compiled [`FusedProgram`] in place, sequentially.
    ///
    /// Produces amplitudes `==`-equal to applying the source circuit with
    /// [`StateVector::apply_circuit`] (see the module docs for the exact
    /// bit-level contract).
    ///
    /// # Errors
    ///
    /// Returns an error when the program was compiled for a different
    /// register shape.
    pub fn apply_fused(&mut self, program: &FusedProgram) -> Result<()> {
        self.apply_fused_on(program, None)
    }

    /// Applies a compiled [`FusedProgram`] in place, fanning independent
    /// block chunks over `pool` when one is given and the register is at
    /// least [`PANEL_PARALLEL_THRESHOLD`] amplitudes.
    ///
    /// Byte-identical to [`StateVector::apply_fused`] for every pool width:
    /// the chunks are disjoint whole blocks and run the same kernel.
    ///
    /// # Errors
    ///
    /// Returns an error when the program was compiled for a different
    /// register shape.
    pub fn apply_fused_on(
        &mut self,
        program: &FusedProgram,
        pool: Option<&WorkStealingPool>,
    ) -> Result<()> {
        if program.dimension != self.dimension() {
            return Err(QuditError::IncompatibleCircuits {
                reason: "program and state dimensions differ".to_string(),
            });
        }
        if program.width != self.width() {
            return Err(QuditError::IncompatibleCircuits {
                reason: "program compiled for a different register width".to_string(),
            });
        }
        let d = program.dimension.as_usize();
        let size = program.size;
        let parallel = pool
            .filter(|pool| pool.threads() > 1 && !in_worker() && size >= PANEL_PARALLEL_THRESHOLD);
        let amplitudes = self.amplitudes_mut();
        let Some(pool) = parallel else {
            for op in &program.ops {
                apply_op_chunk(op, amplitudes, 0, d);
            }
            return Ok(());
        };
        // The pool spawns its scoped workers on every `map`, so dispatching
        // per operation would pay that spawn dozens of times per program.
        // Instead the register is split into aligned power-of-`d` chunks —
        // which are closed under every operation whose block divides the
        // chunk — and *consecutive runs* of such operations are applied in a
        // single dispatch, each worker walking its chunk through the whole
        // run.  Operations with bigger blocks (targets near qudit 0) run
        // sequentially between runs, preserving program order.
        let mut chunk_len = 1usize;
        while size / (chunk_len * d) >= 2 * pool.threads() {
            chunk_len *= d;
        }
        let mut index = 0;
        while index < program.ops.len() {
            if program.ops[index].block > chunk_len {
                apply_op_chunk(&program.ops[index], amplitudes, 0, d);
                index += 1;
                continue;
            }
            let run_start = index;
            while index < program.ops.len() && program.ops[index].block <= chunk_len {
                index += 1;
            }
            let run = &program.ops[run_start..index];
            let chunks: Vec<(usize, &mut [Complex])> = amplitudes
                .chunks_mut(chunk_len)
                .enumerate()
                .map(|(i, chunk)| (i * chunk_len, chunk))
                .collect();
            pool.map(chunks, |(start, chunk)| {
                for op in run {
                    apply_op_chunk(op, chunk, start, d);
                }
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_core::math::SquareMatrix;
    use qudit_core::{Control, QuditId};

    fn dim(d: u32) -> Dimension {
        Dimension::new(d).unwrap()
    }

    fn fourier(d: u32) -> SquareMatrix {
        let omega = Complex::from_phase(2.0 * std::f64::consts::PI / f64::from(d));
        let s = 1.0 / f64::from(d).sqrt();
        let mut entries = Vec::new();
        for r in 0..d {
            for c in 0..d {
                let mut w = Complex::ONE;
                for _ in 0..(r * c) {
                    w *= omega;
                }
                entries.push(w.scale(s));
            }
        }
        SquareMatrix::from_rows(d as usize, entries).unwrap()
    }

    /// A mixed workload: controlled classicals, unitaries (with same-target
    /// runs that fuse), and an AddFrom.
    fn mixed_circuit(d: Dimension, width: usize) -> Circuit {
        let mut circuit = Circuit::new(d, width);
        let f = fourier(d.get());
        for q in 0..width {
            circuit
                .push(Gate::single(
                    SingleQuditOp::Unitary(f.clone()),
                    QuditId::new(q),
                ))
                .unwrap();
        }
        for q in 0..width - 1 {
            circuit
                .push(Gate::controlled(
                    SingleQuditOp::Add(1),
                    QuditId::new(q + 1),
                    vec![Control::level(QuditId::new(q), 1)],
                ))
                .unwrap();
        }
        circuit
            .push(Gate::add_from(
                QuditId::new(0),
                false,
                QuditId::new(width - 1),
                vec![],
            ))
            .unwrap();
        // A same-target unitary run that fuses into one traversal.
        circuit
            .push(Gate::single(
                SingleQuditOp::Unitary(f.clone()),
                QuditId::new(1),
            ))
            .unwrap();
        circuit
            .push(Gate::single(SingleQuditOp::Unitary(f), QuditId::new(1)))
            .unwrap();
        circuit
            .push(Gate::single(SingleQuditOp::Add(2), QuditId::new(1)))
            .unwrap();
        circuit
    }

    fn reference(circuit: &Circuit, width: usize) -> StateVector {
        let mut state = StateVector::new(circuit.dimension(), width);
        state.apply_circuit(circuit).unwrap();
        state
    }

    /// `==`-equality with zero-sign normalisation: the documented contract
    /// of fused vs gate-by-gate execution.
    fn assert_amplitudes_match(fused: &StateVector, reference: &StateVector) {
        assert_eq!(fused.amplitudes().len(), reference.amplitudes().len());
        for (index, (a, b)) in fused
            .amplitudes()
            .iter()
            .zip(reference.amplitudes())
            .enumerate()
        {
            assert_eq!(a, b, "amplitude {index} differs");
            assert_eq!(
                (a.re + 0.0).to_bits(),
                (b.re + 0.0).to_bits(),
                "amplitude {index} re bits differ beyond zero sign"
            );
            assert_eq!(
                (a.im + 0.0).to_bits(),
                (b.im + 0.0).to_bits(),
                "amplitude {index} im bits differ beyond zero sign"
            );
        }
    }

    #[test]
    fn fused_matches_reference_on_scalar_sized_registers() {
        let d = dim(3);
        for width in 2..=4 {
            let circuit = mixed_circuit(d, width);
            let program = FusedProgram::compile(&circuit, width).unwrap();
            assert!(program.fused_gates() > 0);
            let mut fused = StateVector::new(d, width);
            fused.apply_fused(&program).unwrap();
            assert_amplitudes_match(&fused, &reference(&circuit, width));
        }
    }

    #[test]
    fn fused_matches_reference_on_panel_sized_registers() {
        let d = dim(3);
        // Width 8 → strides up to 3^7: both panel and scalar ops occur.
        let width = 8;
        let circuit = mixed_circuit(d, width);
        let program = FusedProgram::compile(&circuit, width).unwrap();
        let mut fused = StateVector::new(d, width);
        fused.apply_fused(&program).unwrap();
        assert_amplitudes_match(&fused, &reference(&circuit, width));
    }

    #[test]
    fn parallel_execution_is_byte_identical_to_sequential() {
        let d = dim(3);
        // Width 10 (3^10 = 59049 ≥ PANEL_PARALLEL_THRESHOLD) so the pool
        // path actually engages.
        let width = 10;
        let circuit = mixed_circuit(d, width);
        let program = FusedProgram::compile(&circuit, width).unwrap();
        let mut sequential = StateVector::new(d, width);
        sequential.apply_fused(&program).unwrap();
        for threads in [1usize, 2, 4] {
            let pool = WorkStealingPool::with_threads(threads);
            let mut parallel = StateVector::new(d, width);
            parallel.apply_fused_on(&program, Some(&pool)).unwrap();
            for (a, b) in parallel.amplitudes().iter().zip(sequential.amplitudes()) {
                assert_eq!(a.re.to_bits(), b.re.to_bits());
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }

    #[test]
    fn inner_and_outer_controls_fire_identically() {
        let d = dim(3);
        let width = 6;
        let f = fourier(3);
        let mut circuit = Circuit::new(d, width);
        // Superpose everything first so every control pattern is exercised.
        for q in 0..width {
            circuit
                .push(Gate::single(
                    SingleQuditOp::Unitary(f.clone()),
                    QuditId::new(q),
                ))
                .unwrap();
        }
        // Outer control (q0 ahead of target q5) and inner control (q5
        // behind target q1), various predicates.
        circuit
            .push(Gate::controlled(
                SingleQuditOp::Unitary(f.clone()),
                QuditId::new(5),
                vec![Control::level(QuditId::new(0), 2)],
            ))
            .unwrap();
        circuit
            .push(Gate::controlled(
                SingleQuditOp::Unitary(f),
                QuditId::new(1),
                vec![
                    Control::odd(QuditId::new(5)),
                    Control::nonzero(QuditId::new(0)),
                ],
            ))
            .unwrap();
        let program = FusedProgram::compile(&circuit, width).unwrap();
        let mut fused = StateVector::new(d, width);
        fused.apply_fused(&program).unwrap();
        assert_amplitudes_match(&fused, &reference(&circuit, width));
    }

    #[test]
    fn program_rejects_mismatched_registers() {
        let d = dim(3);
        let circuit = mixed_circuit(d, 3);
        let program = FusedProgram::compile(&circuit, 3).unwrap();
        let mut wrong_width = StateVector::new(d, 4);
        assert!(wrong_width.apply_fused(&program).is_err());
        let mut wrong_dim = StateVector::new(dim(4), 3);
        assert!(wrong_dim.apply_fused(&program).is_err());
    }
}
