//! Simulation-backed pipeline passes: the [`VerifyEquivalence`] wrapper.
//!
//! [`VerifyEquivalence`] decorates any [`Pass`] with a semantics-preservation
//! check in the spirit of refinement checking: after the inner pass runs,
//! the input and output circuits are compared —
//!
//! * **classical circuits** via the permutation simulator (exhaustively when
//!   the register is small, on deterministic random basis states otherwise);
//! * **all-Clifford circuits** over prime dimensions via exact stabilizer
//!   tableau comparison ([`crate::stabilizer`]) — complete up to global
//!   phase at *any* register width;
//! * **other non-classical circuits** via the state-vector simulator — full
//!   unitary comparison up to global phase on small registers, fidelity on
//!   random dense input states (which are sensitive to relative-phase
//!   changes) on larger ones.
//!
//! A detected mismatch surfaces as [`QuditError::PassFailed`], naming the
//! wrapped pass and the offending basis state.
//!
//! State-vector comparisons run on a configurable [`SimBackend`]
//! ([`VerifyEquivalence::with_backend`]); the default `Auto` backend walks
//! each circuit's classical prefix sparsely with bit-identical results, so
//! verification of the paper's (mostly classical) pipelines no longer pays
//! the dense `O(d^width)`-per-gate walk over the long permutation prefixes.

use qudit_core::math::MATRIX_TOLERANCE;
use qudit_core::pipeline::{Pass, PassContext, PassManager};
use qudit_core::pool::WorkStealingPool;
use qudit_core::{Circuit, QuditError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::sparse::{circuit_unitary_with, SimBackend, SimState};
use crate::statevector::StateVector;

/// Default register-size bound for exhaustive classical checking.
const DEFAULT_MAX_EXHAUSTIVE_STATES: usize = 4096;
/// Default number of sampled basis states above the exhaustive bound.
const DEFAULT_SAMPLES: usize = 256;
/// Register-size bound for full-unitary checking of non-classical circuits.
const MAX_UNITARY_STATES: usize = 256;
/// Register-size bound for the sampled state-vector fallback (each sample
/// costs one full state-vector simulation of both circuits).
const MAX_SAMPLED_STATEVECTOR_STATES: usize = 1 << 20;
/// Cap on state-vector samples (they are much more expensive than the
/// classical basis-state samples, and dense random inputs are maximally
/// sensitive, so a handful suffices).
const MAX_STATEVECTOR_SAMPLES: usize = 8;
/// Fixed seed so verification failures are reproducible.
const SAMPLE_SEED: u64 = 0x5EED_CAFE;
/// Basis-state count above which the exhaustive classical sweep fans out
/// over a work-stealing pool (each state checks independently).
const PARALLEL_VERIFY_THRESHOLD: usize = 1024;

/// A [`Pass`] decorator that checks the wrapped pass preserved the circuit's
/// semantics.
///
/// # Example
///
/// ```
/// use qudit_core::pipeline::{LowerToGGates, PassManager};
/// use qudit_core::{Circuit, Control, Dimension, Gate, QuditId, SingleQuditOp};
/// use qudit_sim::pipeline::VerifyEquivalence;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = Dimension::new(3)?;
/// let mut circuit = Circuit::new(d, 2);
/// circuit.push(Gate::controlled(
///     SingleQuditOp::Add(1),
///     QuditId::new(1),
///     vec![Control::level(QuditId::new(0), 1)],
/// ))?;
///
/// // Every pass in the pipeline self-checks after running.
/// let manager = VerifyEquivalence::wrap_manager(
///     PassManager::new().with_pass(LowerToGGates),
/// );
/// let report = manager.run(circuit)?;
/// assert_eq!(report.stats[0].pass, "verify(lower-to-g-gates)");
/// # Ok(())
/// # }
/// ```
pub struct VerifyEquivalence {
    name: String,
    inner: Box<dyn Pass>,
    max_exhaustive_states: usize,
    samples: usize,
    backend: SimBackend,
}

impl VerifyEquivalence {
    /// Wraps a pass with the default verification limits and the
    /// [`SimBackend::Auto`] simulation backend.
    pub fn wrap(inner: Box<dyn Pass>) -> Self {
        VerifyEquivalence {
            name: format!("verify({})", inner.name()),
            inner,
            max_exhaustive_states: DEFAULT_MAX_EXHAUSTIVE_STATES,
            samples: DEFAULT_SAMPLES,
            backend: SimBackend::Auto,
        }
    }

    /// Sets the register-size bound below which classical circuits are
    /// checked exhaustively, and the number of sampled basis states used
    /// above it.
    #[must_use]
    pub fn with_limits(mut self, max_exhaustive_states: usize, samples: usize) -> Self {
        self.max_exhaustive_states = max_exhaustive_states;
        self.samples = samples;
        self
    }

    /// Selects the simulation backend the state-vector comparisons run on.
    ///
    /// The default, [`SimBackend::Auto`], scans each circuit for a classical
    /// prefix and simulates that prefix sparsely; `Dense` restores the
    /// pre-sparse behaviour and `Sparse` forces the hybrid engine.  Under
    /// `Auto` and [`SimBackend::Stabilizer`], a pair of all-Clifford
    /// circuits over a prime dimension is compared exactly via their
    /// stabilizer tableaus instead — at any register width.  Every path is
    /// exact (up to global phase), so the verdicts never depend on this
    /// knob — only the wall time and the reachable widths do.
    #[must_use]
    pub fn with_backend(mut self, backend: SimBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Wraps every pass of a [`PassManager`] in a [`VerifyEquivalence`]
    /// decorator, turning the pipeline into a self-checking one.
    #[must_use]
    pub fn wrap_manager(manager: PassManager) -> PassManager {
        Self::wrap_manager_with_backend(manager, SimBackend::Auto)
    }

    /// [`VerifyEquivalence::wrap_manager`] with an explicit simulation
    /// backend for every wrapper.
    #[must_use]
    pub fn wrap_manager_with_backend(manager: PassManager, backend: SimBackend) -> PassManager {
        manager.map_passes(|inner| Box::new(VerifyEquivalence::wrap(inner).with_backend(backend)))
    }

    fn fail(&self, reason: String) -> QuditError {
        QuditError::PassFailed {
            pass: self.inner.name().to_string(),
            reason,
        }
    }

    fn check_equivalent(
        &self,
        before: &Circuit,
        after: &Circuit,
        pinned_pool: Option<WorkStealingPool>,
    ) -> Result<()> {
        if before.dimension() != after.dimension() || before.width() != after.width() {
            return Err(self.fail(format!(
                "pass changed the register: d={}, width={} -> d={}, width={}",
                before.dimension(),
                before.width(),
                after.dimension(),
                after.width()
            )));
        }
        let dimension = before.dimension();
        let size = dimension.register_size(before.width());
        // Tableau fast path: when both circuits are all-Clifford over a
        // prime dimension, their stabilizer tableaus compare exactly (up to
        // global phase) in `O(gates · width²)` — independent of `d^width`,
        // so this is the branch that verifies at widths the dense engine
        // cannot touch.  Classical pairs keep the permutation sweep below
        // (it is cheaper and never pays for classification); the Dense and
        // Sparse backends keep their historical paths.
        if matches!(self.backend, SimBackend::Auto | SimBackend::Stabilizer)
            && dimension.is_prime()
            && !(before.is_classical() && after.is_classical())
            && crate::stabilizer::is_clifford_circuit(before)
            && crate::stabilizer::is_clifford_circuit(after)
        {
            let parallel = !qudit_core::pool::in_worker();
            let pool = parallel.then(|| pinned_pool.unwrap_or_default());
            let equal =
                crate::stabilizer::clifford_circuits_equal_on(before, after, pool.as_ref())?;
            if !equal {
                return Err(self.fail(
                    "output circuit is not equivalent to its input (stabilizer tableaus differ)"
                        .to_string(),
                ));
            }
            return Ok(());
        }
        if before.is_classical() && after.is_classical() {
            if size <= self.max_exhaustive_states {
                // One sweep over the basis yields the witness directly.
                // Each state checks independently, so large sweeps fan out
                // over the run's pinned pool — or an environment-sized one
                // when the manager pinned none — never nested inside a
                // batch worker (see qudit_core::pool); the witness (if any)
                // is the first in basis order regardless of which worker
                // found it.  Small sweeps stream the iterator without
                // collecting.
                let parallel = size >= PARALLEL_VERIFY_THRESHOLD && !qudit_core::pool::in_worker();
                let pool = parallel.then(|| pinned_pool.unwrap_or_default());
                match pool.filter(|pool| pool.threads() > 1) {
                    Some(pool) => {
                        let states: Vec<Vec<u32>> =
                            crate::basis::all_basis_states(dimension, before.width()).collect();
                        let chunk_size = states
                            .len()
                            .div_ceil(pool.threads().saturating_mul(4))
                            .max(1);
                        let chunks: Vec<&[Vec<u32>]> = states.chunks(chunk_size).collect();
                        let witnesses = pool.map(chunks, |chunk| {
                            for input in chunk {
                                if before.apply_to_basis(input)? != after.apply_to_basis(input)? {
                                    return Ok(Some(input.clone()));
                                }
                            }
                            Ok::<_, QuditError>(None)
                        });
                        for witness in witnesses {
                            if let Some(input) = witness? {
                                return Err(self.fail(format!(
                                    "output circuit is not equivalent to its input (basis state {input:?})"
                                )));
                            }
                        }
                    }
                    None => {
                        for input in crate::basis::all_basis_states(dimension, before.width()) {
                            if before.apply_to_basis(&input)? != after.apply_to_basis(&input)? {
                                return Err(self.fail(format!(
                                    "output circuit is not equivalent to its input (basis state {input:?})"
                                )));
                            }
                        }
                    }
                }
            } else {
                // Uniform basis states almost never satisfy a deep
                // multi-controlled gate (probability d^-k), so bias half of
                // the samples: force the controls of one randomly chosen gate
                // (from either circuit) onto matching levels.
                let mut rng = StdRng::seed_from_u64(SAMPLE_SEED);
                let gate_pool: Vec<&qudit_core::Gate> =
                    before.gates().iter().chain(after.gates()).collect();
                for sample in 0..self.samples {
                    let mut input =
                        crate::sampling::uniform_basis_state(dimension, before.width(), &mut rng);
                    if sample % 2 == 0 && !gate_pool.is_empty() {
                        let gate = gate_pool[rng.gen_range(0..gate_pool.len())];
                        crate::sampling::force_controls_matching(
                            &mut input,
                            gate.controls(),
                            dimension,
                            &mut rng,
                        );
                    }
                    if before.apply_to_basis(&input)? != after.apply_to_basis(&input)? {
                        return Err(self.fail(format!(
                            "output circuit is not equivalent to its input (basis state {input:?})"
                        )));
                    }
                }
            }
        } else if size <= MAX_UNITARY_STATES {
            // Column states are basis states, so the backend's sparse
            // fast-path covers each circuit's classical prefix.
            let before_unitary = circuit_unitary_with(before, self.backend)?;
            let after_unitary = circuit_unitary_with(after, self.backend)?;
            if !before_unitary.approx_eq_up_to_phase(&after_unitary, MATRIX_TOLERANCE.max(1e-7)) {
                return Err(self.fail(
                    "output unitary differs from the input unitary (up to phase)".to_string(),
                ));
            }
        } else if size <= MAX_SAMPLED_STATEVECTOR_STATES {
            // Apply both circuits to random *dense* states and require unit
            // fidelity.  A dense input mixes every column of the unitary, so
            // a relative (per-basis-state) phase change — invisible to
            // basis-state inputs — destroys the fidelity with probability 1;
            // only a consistent global phase survives, matching the
            // small-register comparison above.
            let mut rng = StdRng::seed_from_u64(SAMPLE_SEED);
            let samples = self.samples.clamp(1, MAX_STATEVECTOR_SAMPLES);
            for sample in 0..samples {
                let amplitudes: Vec<qudit_core::math::Complex> = (0..size)
                    .map(|_| {
                        qudit_core::math::Complex::new(
                            rng.gen_range(-1.0..1.0),
                            rng.gen_range(-1.0..1.0),
                        )
                    })
                    .collect();
                let norm = amplitudes.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
                let amplitudes: Vec<qudit_core::math::Complex> =
                    amplitudes.iter().map(|a| a.scale(1.0 / norm)).collect();
                // Routed through the hybrid engine for uniformity; a dense
                // random input resolves to the dense representation, where
                // the fused panel engine runs — fanned over the run's
                // pinned pool on registers large enough to pay (never
                // nested inside a batch worker; the fused result is
                // byte-identical for every pool width).
                let sim_pool = pinned_pool.as_ref();
                let mut state_before = SimState::from_statevector(
                    StateVector::from_amplitudes(dimension, before.width(), amplitudes.clone())?,
                    self.backend,
                );
                state_before.apply_circuit_on(before, sim_pool)?;
                let mut state_after = SimState::from_statevector(
                    StateVector::from_amplitudes(dimension, before.width(), amplitudes)?,
                    self.backend,
                );
                state_after.apply_circuit_on(after, sim_pool)?;
                let state_before = state_before.into_statevector();
                let state_after = state_after.into_statevector();
                if (state_before.fidelity(&state_after) - 1.0).abs() > 1e-9 {
                    return Err(self.fail(format!(
                        "output circuit is not equivalent to its input \
                         (random dense state sample {sample}, seed {SAMPLE_SEED:#x})"
                    )));
                }
            }
        } else {
            return Err(self.fail(format!(
                "cannot verify a non-classical circuit over {size} basis states; \
                 register is too large for state-vector comparison"
            )));
        }
        Ok(())
    }
}

impl Pass for VerifyEquivalence {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&self, circuit: Circuit) -> Result<Circuit> {
        let output = self.inner.run(circuit.clone())?;
        self.check_equivalent(&circuit, &output, None)?;
        Ok(output)
    }

    fn run_with(&self, circuit: Circuit, ctx: &mut PassContext) -> Result<Circuit> {
        // Forward the context so the wrapped pass keeps its cache access
        // (and its cache statistics) under verification, and so the
        // exhaustive sweep honours the run's pinned worker pool.
        let output = self.inner.run_with(circuit.clone(), ctx)?;
        self.check_equivalent(&circuit, &output, ctx.pool())?;
        Ok(output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_core::pipeline::{pass_fn, CancelInversePairs, LowerToGGates};
    use qudit_core::{Control, Dimension, Gate, QuditId, SingleQuditOp};

    fn dim(d: u32) -> Dimension {
        Dimension::new(d).unwrap()
    }

    fn sample_circuit() -> Circuit {
        let mut circuit = Circuit::new(dim(3), 2);
        circuit
            .push(Gate::controlled(
                SingleQuditOp::Add(2),
                QuditId::new(1),
                vec![Control::level(QuditId::new(0), 1)],
            ))
            .unwrap();
        circuit
    }

    #[test]
    fn faithful_passes_verify() {
        let manager = VerifyEquivalence::wrap_manager(
            PassManager::new()
                .with_pass(LowerToGGates)
                .with_pass(CancelInversePairs),
        );
        assert_eq!(
            manager.pass_names(),
            vec!["verify(lower-to-g-gates)", "verify(cancel-inverse-pairs)"]
        );
        let report = manager.run(sample_circuit()).unwrap();
        assert!(report.circuit.gates().iter().all(Gate::is_g_gate));
    }

    #[test]
    fn unfaithful_passes_are_caught() {
        // A "pass" that drops every gate: semantics clearly not preserved.
        let drop_all = pass_fn("drop-all", |c: Circuit| {
            Ok(Circuit::new(c.dimension(), c.width()))
        });
        let manager = PassManager::new().with_pass(VerifyEquivalence::wrap(Box::new(drop_all)));
        let result = manager.run(sample_circuit());
        match result {
            Err(QuditError::PassFailed { pass, reason }) => {
                assert_eq!(pass, "drop-all");
                assert!(reason.contains("not equivalent"), "{reason}");
            }
            other => panic!("expected PassFailed, got {other:?}"),
        }
    }

    #[test]
    fn register_changes_are_caught() {
        let shrink = pass_fn("shrink", |c: Circuit| {
            Ok(Circuit::new(c.dimension(), c.width() - 1))
        });
        let manager = PassManager::new().with_pass(VerifyEquivalence::wrap(Box::new(shrink)));
        assert!(matches!(
            manager.run(sample_circuit()),
            Err(QuditError::PassFailed { .. })
        ));
    }

    #[test]
    fn sampled_verification_covers_large_registers() {
        // Force the sampled path with a tiny exhaustive bound.
        let verified = VerifyEquivalence::wrap(Box::new(LowerToGGates)).with_limits(1, 64);
        let manager = PassManager::new().with_pass(verified);
        assert!(manager.run(sample_circuit()).is_ok());
    }

    #[test]
    fn sampled_verification_fires_deep_multi_controlled_gates() {
        // d=3, 9-control Toffoli on width 10: 3^10 = 59049 basis states, far
        // above the exhaustive bound, and a uniform sample satisfies all nine
        // |0⟩-controls with probability 3^-9.  The control-biased samples
        // must still catch a pass that deletes the gate.
        let d = dim(3);
        let mut circuit = Circuit::new(d, 10);
        circuit
            .push(Gate::controlled(
                SingleQuditOp::Swap(0, 1),
                QuditId::new(9),
                (0..9).map(|i| Control::zero(QuditId::new(i))).collect(),
            ))
            .unwrap();
        let drop_all = pass_fn("drop-all", |c: Circuit| {
            Ok(Circuit::new(c.dimension(), c.width()))
        });
        let manager = PassManager::new().with_pass(VerifyEquivalence::wrap(Box::new(drop_all)));
        match manager.run(circuit) {
            Err(QuditError::PassFailed { pass, .. }) => assert_eq!(pass, "drop-all"),
            other => panic!("expected PassFailed, got {other:?}"),
        }
    }

    #[test]
    fn non_classical_circuits_use_the_statevector_path() {
        use qudit_core::math::{Complex, SquareMatrix};
        let s = 1.0 / 2.0f64.sqrt();
        let mut m = SquareMatrix::identity(3);
        m[(0, 0)] = Complex::from_real(s);
        m[(0, 1)] = Complex::from_real(s);
        m[(1, 0)] = Complex::from_real(s);
        m[(1, 1)] = Complex::from_real(-s);
        let mut circuit = Circuit::new(dim(3), 1);
        circuit
            .push(Gate::single(SingleQuditOp::Unitary(m), QuditId::new(0)))
            .unwrap();

        // The identity pass trivially preserves the unitary.
        let identity = pass_fn("identity", Ok);
        let manager = PassManager::new().with_pass(VerifyEquivalence::wrap(Box::new(identity)));
        assert!(manager.run(circuit.clone()).is_ok());

        // Dropping the gate does not.
        let drop_all = pass_fn("drop-all", |c: Circuit| {
            Ok(Circuit::new(c.dimension(), c.width()))
        });
        let manager = PassManager::new().with_pass(VerifyEquivalence::wrap(Box::new(drop_all)));
        assert!(matches!(
            manager.run(circuit),
            Err(QuditError::PassFailed { .. })
        ));
    }

    #[test]
    fn large_non_classical_circuits_use_the_sampled_statevector_path() {
        use qudit_core::math::{Complex, SquareMatrix};
        let s = 1.0 / 2.0f64.sqrt();
        let mut m = SquareMatrix::identity(3);
        m[(0, 0)] = Complex::from_real(s);
        m[(0, 1)] = Complex::from_real(s);
        m[(1, 0)] = Complex::from_real(s);
        m[(1, 1)] = Complex::from_real(-s);
        // Width 6 over qutrits: 3^6 = 729 > MAX_UNITARY_STATES, so the
        // sampled column-fidelity fallback must kick in rather than erroring.
        let mut circuit = Circuit::new(dim(3), 6);
        circuit
            .push(Gate::single(SingleQuditOp::Unitary(m), QuditId::new(2)))
            .unwrap();
        circuit
            .push(Gate::controlled(
                SingleQuditOp::Add(1),
                QuditId::new(5),
                vec![Control::zero(QuditId::new(0))],
            ))
            .unwrap();

        let identity = pass_fn("identity", Ok);
        let manager = PassManager::new().with_pass(VerifyEquivalence::wrap(Box::new(identity)));
        assert!(manager.run(circuit.clone()).is_ok());

        let drop_all = pass_fn("drop-all", |c: Circuit| {
            Ok(Circuit::new(c.dimension(), c.width()))
        });
        let manager = PassManager::new().with_pass(VerifyEquivalence::wrap(Box::new(drop_all)));
        match manager.run(circuit) {
            Err(QuditError::PassFailed { pass, .. }) => assert_eq!(pass, "drop-all"),
            other => panic!("expected PassFailed, got {other:?}"),
        }
    }

    #[test]
    fn clifford_circuits_verify_via_tableaus_beyond_dense_reach() {
        use qudit_core::math::{Complex, SquareMatrix};
        // Width 24 over qutrits: 3^24 ≈ 2.8·10¹¹ basis states — every
        // state-vector path would refuse or exhaust memory, so a passing
        // verdict proves the tableau branch ran.
        let omega = 2.0 * std::f64::consts::PI / 3.0;
        let s = 1.0 / 3.0f64.sqrt();
        let mut entries = Vec::new();
        for r in 0..3u32 {
            for c in 0..3u32 {
                entries.push(Complex::from_phase(omega * f64::from(r * c)).scale(s));
            }
        }
        let fourier = SquareMatrix::from_rows(3, entries).unwrap();
        let width = 24;
        let mut circuit = Circuit::new(dim(3), width);
        for q in 0..width {
            circuit
                .push(Gate::single(
                    SingleQuditOp::Unitary(fourier.clone()),
                    QuditId::new(q),
                ))
                .unwrap();
            if q + 1 < width {
                circuit
                    .push(Gate::add_from(
                        QuditId::new(q),
                        false,
                        QuditId::new(q + 1),
                        vec![],
                    ))
                    .unwrap();
            }
        }

        for backend in [SimBackend::Auto, SimBackend::Stabilizer] {
            let identity = pass_fn("identity", Ok);
            let manager = PassManager::new()
                .with_pass(VerifyEquivalence::wrap(Box::new(identity)).with_backend(backend));
            assert!(manager.run(circuit.clone()).is_ok(), "backend {backend}");

            // Dropping one gate flips the verdict (the "pass" output is
            // still all-Clifford, so the tableau branch is the one that
            // catches it).
            let drop_last = pass_fn("drop-last", |c: Circuit| {
                let mut out = Circuit::new(c.dimension(), c.width());
                for gate in c.gates().iter().take(c.len() - 1) {
                    out.push(gate.clone())?;
                }
                Ok(out)
            });
            let manager = PassManager::new()
                .with_pass(VerifyEquivalence::wrap(Box::new(drop_last)).with_backend(backend));
            match manager.run(circuit.clone()) {
                Err(QuditError::PassFailed { pass, reason }) => {
                    assert_eq!(pass, "drop-last");
                    assert!(reason.contains("stabilizer"), "{reason}");
                }
                other => panic!("expected PassFailed, got {other:?}"),
            }
        }
    }

    #[test]
    fn verdicts_are_backend_independent() {
        // The same faithful and unfaithful passes must pass/fail identically
        // under Dense, Sparse and Auto.
        for backend in [SimBackend::Dense, SimBackend::Sparse, SimBackend::Auto] {
            let ok = PassManager::new()
                .with_pass(VerifyEquivalence::wrap(Box::new(LowerToGGates)).with_backend(backend));
            assert!(ok.run(sample_circuit()).is_ok(), "backend {backend}");

            let drop_all = pass_fn("drop-all", |c: Circuit| {
                Ok(Circuit::new(c.dimension(), c.width()))
            });
            let bad = PassManager::new()
                .with_pass(VerifyEquivalence::wrap(Box::new(drop_all)).with_backend(backend));
            assert!(
                matches!(
                    bad.run(sample_circuit()),
                    Err(QuditError::PassFailed { .. })
                ),
                "backend {backend}"
            );
        }
    }

    #[test]
    fn wrap_manager_with_backend_wraps_every_pass() {
        let manager = VerifyEquivalence::wrap_manager_with_backend(
            PassManager::new()
                .with_pass(LowerToGGates)
                .with_pass(CancelInversePairs),
            SimBackend::Sparse,
        );
        assert_eq!(
            manager.pass_names(),
            vec!["verify(lower-to-g-gates)", "verify(cancel-inverse-pairs)"]
        );
        assert!(manager.run(sample_circuit()).is_ok());
    }

    #[test]
    fn sampled_statevector_path_catches_relative_phase_changes() {
        use qudit_core::math::{Complex, SquareMatrix};
        // Width 6 over qutrits (729 states) forces the sampled fallback; the
        // extra unitary gate keeps the circuit non-classical on both sides.
        let hadamard_like = {
            let s = 1.0 / 2.0f64.sqrt();
            let mut m = SquareMatrix::identity(3);
            m[(0, 0)] = Complex::from_real(s);
            m[(0, 1)] = Complex::from_real(s);
            m[(1, 0)] = Complex::from_real(s);
            m[(1, 1)] = Complex::from_real(-s);
            m
        };
        let mut circuit = Circuit::new(dim(3), 6);
        circuit
            .push(Gate::single(
                SingleQuditOp::Unitary(hadamard_like),
                QuditId::new(0),
            ))
            .unwrap();
        circuit
            .push(Gate::single(SingleQuditOp::Swap(0, 1), QuditId::new(5)))
            .unwrap();

        // A pass that replaces the trailing X01 with a phase-twisted swap:
        // |0> -> |1>, |1> -> e^{i phi}|0>.  Basis-state inputs cannot see the
        // relative phase; random dense inputs must.
        let twist = pass_fn("phase-twist", |c: Circuit| {
            let mut twisted = SquareMatrix::identity(3);
            twisted[(0, 0)] = Complex::ZERO;
            twisted[(1, 1)] = Complex::ZERO;
            twisted[(1, 0)] = Complex::ONE;
            twisted[(0, 1)] = Complex::from_phase(1.0);
            let mut out = Circuit::new(c.dimension(), c.width());
            for gate in c.gates().iter().take(c.len() - 1) {
                out.push(gate.clone())?;
            }
            out.push(Gate::single(
                SingleQuditOp::Unitary(twisted),
                QuditId::new(5),
            ))?;
            Ok(out)
        });
        let manager = PassManager::new().with_pass(VerifyEquivalence::wrap(Box::new(twist)));
        match manager.run(circuit) {
            Err(QuditError::PassFailed { pass, reason }) => {
                assert_eq!(pass, "phase-twist");
                assert!(reason.contains("random dense state"), "{reason}");
            }
            other => panic!("expected PassFailed, got {other:?}"),
        }
    }
}
