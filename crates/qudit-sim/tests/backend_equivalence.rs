//! Property-based equivalence of the simulation backends: random circuits —
//! fully classical, mixed (classical prefix plus unitaries), and fully
//! non-classical — must produce *identical* final states under the dense,
//! sparse and auto backends, and the `VerifyEquivalence` pass must return
//! the same verdict whichever backend it simulates on.

use proptest::prelude::*;
use qudit_core::pipeline::{pass_fn, PassManager};
use qudit_core::{Circuit, Control, Dimension, Gate, QuditId, SingleQuditOp};
use qudit_sim::pipeline::VerifyEquivalence;
use qudit_sim::random::random_single_qudit_unitary;
use qudit_sim::{basis, classical_prefix_len, simulate_basis, SimBackend};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The circuit families the properties quantify over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Family {
    /// Permutation gates only (the synthesis output shape).
    Classical,
    /// A classical prefix with unitaries sprinkled into the suffix.
    Mixed,
    /// A non-classical gate in (almost) every slot.
    Quantum,
}

/// Builds a deterministic random circuit of the given family from a list of
/// gate seeds.
fn build_circuit(dimension: Dimension, width: usize, family: Family, seeds: &[u64]) -> Circuit {
    let d = dimension.get();
    let mut circuit = Circuit::new(dimension, width);
    for (slot, &seed) in seeds.iter().enumerate() {
        let target = QuditId::new((seed % width as u64) as usize);
        let other = QuditId::new(((seed / 7 + 1) as usize % width.max(2)).min(width - 1));
        let control_qudit = if other == target {
            QuditId::new((target.index() + 1) % width)
        } else {
            other
        };
        let non_classical = match family {
            Family::Classical => false,
            // Keep the first third classical so the circuit has a real
            // classical prefix for the hybrid engine to exploit.
            Family::Mixed => seed % 3 == 0 && slot >= seeds.len() / 3,
            Family::Quantum => seed % 4 != 3,
        };
        let gate = if non_classical && width >= 1 {
            let mut rng = StdRng::seed_from_u64(seed);
            let unitary = SingleQuditOp::Unitary(random_single_qudit_unitary(dimension, &mut rng));
            if seed % 2 == 0 && width >= 2 {
                Gate::controlled(
                    unitary,
                    target,
                    vec![Control::level(
                        control_qudit,
                        (seed / 3 % u64::from(d)) as u32,
                    )],
                )
            } else {
                Gate::single(unitary, target)
            }
        } else {
            match seed % 4 {
                0 => Gate::single(SingleQuditOp::Add(1 + (seed / 5) as u32 % (d - 1)), target),
                1 => Gate::single(
                    SingleQuditOp::Swap(0, 1 + (seed / 5) as u32 % (d - 1)),
                    target,
                ),
                2 if width >= 2 => Gate::controlled(
                    SingleQuditOp::Add(1 + (seed / 11) as u32 % (d - 1)),
                    target,
                    vec![Control::level(
                        control_qudit,
                        (seed / 3 % u64::from(d)) as u32,
                    )],
                ),
                _ if width >= 2 => Gate::add_from(control_qudit, seed % 2 == 0, target, vec![]),
                _ => Gate::single(SingleQuditOp::Add(1), target),
            }
        };
        circuit.push(gate).expect("generated gates are valid");
    }
    circuit
}

fn any_family() -> impl Strategy<Value = Family> {
    (0u8..3).prop_map(|tag| match tag {
        0 => Family::Classical,
        1 => Family::Mixed,
        _ => Family::Quantum,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All three backends produce bit-identical final states on every basis
    /// input, for every circuit family.
    #[test]
    fn backends_agree_on_final_states(
        d in 3u32..=5,
        width in 2usize..=3,
        family in any_family(),
        seeds in prop::collection::vec(0u64..100_000, 1..24),
        input_picks in prop::collection::vec(0usize..10_000, 4),
    ) {
        let dimension = Dimension::new(d).unwrap();
        let circuit = build_circuit(dimension, width, family, &seeds);
        if family == Family::Classical {
            prop_assert!(circuit.is_classical());
            prop_assert_eq!(classical_prefix_len(&circuit), circuit.len());
        }
        let size = dimension.register_size(width);
        for pick in input_picks {
            let input = basis::index_to_digits(pick % size, dimension, width);
            let dense = simulate_basis(&circuit, &input, SimBackend::Dense).unwrap();
            let sparse = simulate_basis(&circuit, &input, SimBackend::Sparse).unwrap();
            let auto = simulate_basis(&circuit, &input, SimBackend::Auto).unwrap();
            prop_assert_eq!(&dense, &sparse, "sparse differs on {:?}", &input);
            prop_assert_eq!(&dense, &auto, "auto differs on {:?}", &input);
            // Sanity: the state stays normalised either way.
            prop_assert!((dense.norm_sqr() - 1.0).abs() < 1e-6);
        }
    }

    /// `VerifyEquivalence` returns the same verdict on every backend: a
    /// faithful (identity) pass passes everywhere, and an unfaithful pass
    /// (dropping the last gate) produces the same accept/reject decision on
    /// dense, sparse and auto.
    #[test]
    fn verify_equivalence_verdicts_match_across_backends(
        d in 3u32..=4,
        width in 2usize..=3,
        family in any_family(),
        seeds in prop::collection::vec(0u64..100_000, 1..12),
    ) {
        let dimension = Dimension::new(d).unwrap();
        let circuit = build_circuit(dimension, width, family, &seeds);

        let mut faithful = Vec::new();
        let mut unfaithful = Vec::new();
        for backend in [SimBackend::Dense, SimBackend::Sparse, SimBackend::Auto] {
            let identity = pass_fn("identity", Ok);
            let manager = PassManager::new()
                .with_pass(VerifyEquivalence::wrap(Box::new(identity)).with_backend(backend));
            faithful.push(manager.run(circuit.clone()).is_ok());

            let drop_last = pass_fn("drop-last", |c: Circuit| {
                let mut out = Circuit::new(c.dimension(), c.width());
                for gate in c.gates().iter().take(c.len().saturating_sub(1)) {
                    out.push(gate.clone())?;
                }
                Ok(out)
            });
            let manager = PassManager::new()
                .with_pass(VerifyEquivalence::wrap(Box::new(drop_last)).with_backend(backend));
            unfaithful.push(manager.run(circuit.clone()).is_ok());
        }
        // The identity pass must verify on every backend.
        prop_assert_eq!(faithful, vec![true, true, true]);
        // Whatever the drop-last verdict is, it must not depend on the
        // backend.
        prop_assert!(
            unfaithful.iter().all(|&ok| ok == unfaithful[0]),
            "verdicts diverged: {:?}",
            unfaithful
        );
    }
}
