//! Exactness suite for the fused dense engine:
//!
//! * property-based: applying a [`FusedProgram`] — sequentially or fanned
//!   over a pinned pool — produces the same amplitudes as the scalar
//!   gate-by-gate reference walk (`==`-equal, and bit-identical up to IEEE
//!   zero signs), and the `Dense`/`Sparse`/`Auto` backends agree with the
//!   reference on the same circuits under 1- and 4-worker pools;
//! * directed: a fusion run straddling a non-commuting gate splits instead
//!   of reordering across it, and a superposed-input `AddFrom` chain stays
//!   on the sparse `O(nnz)` path under block-level nnz tracking while
//!   matching the dense amplitudes exactly.

use proptest::prelude::*;
use qudit_core::math::Complex;
use qudit_core::pool::WorkStealingPool;
use qudit_core::{Circuit, Control, Dimension, Gate, QuditId, SingleQuditOp};
use qudit_sim::random::random_single_qudit_unitary;
use qudit_sim::{FusedProgram, SimBackend, SimState, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a deterministic random mixed circuit (classical gates, controlled
/// shifts, `AddFrom` relocations and random unitaries) from gate seeds.
fn build_circuit(dimension: Dimension, width: usize, seeds: &[u64]) -> Circuit {
    let d = dimension.get();
    let mut circuit = Circuit::new(dimension, width);
    for &seed in seeds {
        let target = QuditId::new((seed % width as u64) as usize);
        let mut other = QuditId::new(((seed / 7) as usize + 1) % width);
        if other == target {
            other = QuditId::new((target.index() + 1) % width);
        }
        let gate = match seed % 5 {
            0 => Gate::single(SingleQuditOp::Add(1 + (seed / 5) as u32 % (d - 1)), target),
            1 => Gate::single(
                SingleQuditOp::Swap(0, 1 + (seed / 5) as u32 % (d - 1)),
                target,
            ),
            2 => Gate::controlled(
                SingleQuditOp::Add(1 + (seed / 11) as u32 % (d - 1)),
                target,
                vec![Control::level(other, (seed / 3 % u64::from(d)) as u32)],
            ),
            3 => Gate::add_from(other, seed % 2 == 0, target, vec![]),
            _ => {
                let mut rng = StdRng::seed_from_u64(seed);
                let unitary =
                    SingleQuditOp::Unitary(random_single_qudit_unitary(dimension, &mut rng));
                if seed % 2 == 0 {
                    Gate::controlled(
                        unitary,
                        target,
                        vec![Control::level(other, (seed / 3 % u64::from(d)) as u32)],
                    )
                } else {
                    Gate::single(unitary, target)
                }
            }
        };
        circuit.push(gate).expect("generated gates are valid");
    }
    circuit
}

/// Asserts two amplitude slices are `==`-equal and bit-identical after
/// normalising IEEE zero signs (`-0.0 == 0.0`, and the two engines are
/// allowed to differ only in which zero they store).
fn assert_exact(reference: &[Complex], fused: &[Complex]) {
    assert_eq!(reference.len(), fused.len());
    for (index, (a, b)) in reference.iter().zip(fused).enumerate() {
        assert_eq!(a, b, "amplitude {index} diverged");
        assert_eq!(
            (a.re + 0.0).to_bits(),
            (b.re + 0.0).to_bits(),
            "re bits diverged at {index}"
        );
        assert_eq!(
            (a.im + 0.0).to_bits(),
            (b.im + 0.0).to_bits(),
            "im bits diverged at {index}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The fused engine equals the scalar gate-by-gate reference on random
    /// mixed circuits, sequentially and on pinned 1- and 4-worker pools.
    #[test]
    fn fused_apply_matches_gate_by_gate(
        d in 3u32..=4,
        width in 2usize..=6,
        seeds in prop::collection::vec(0u64..100_000, 1..24),
        input_pick in 0usize..10_000,
    ) {
        let dimension = Dimension::new(d).unwrap();
        let circuit = build_circuit(dimension, width, &seeds);
        let size = dimension.register_size(width);
        let input = qudit_sim::basis::index_to_digits(input_pick % size, dimension, width);

        let mut reference = StateVector::from_basis(dimension, &input).unwrap();
        reference.apply_circuit(&circuit).unwrap();

        let program = FusedProgram::compile(&circuit, width).unwrap();
        prop_assert_eq!(program.source_gates(), circuit.len());
        prop_assert!(program.traversals() <= circuit.len());

        for threads in [None, Some(1), Some(4)] {
            let pool = threads.map(WorkStealingPool::with_threads);
            let mut fused = StateVector::from_basis(dimension, &input).unwrap();
            fused.apply_fused_on(&program, pool.as_ref()).unwrap();
            assert_exact(reference.amplitudes(), fused.amplitudes());
        }
    }

    /// The `Dense`, `Sparse` and `Auto` backends (which route through the
    /// fused engine on their dense legs) agree with the reference walk under
    /// 1- and 4-worker pools.
    #[test]
    fn backends_match_reference_across_pools(
        d in 3u32..=4,
        width in 2usize..=5,
        seeds in prop::collection::vec(0u64..100_000, 1..16),
        input_pick in 0usize..10_000,
    ) {
        let dimension = Dimension::new(d).unwrap();
        let circuit = build_circuit(dimension, width, &seeds);
        let size = dimension.register_size(width);
        let input = qudit_sim::basis::index_to_digits(input_pick % size, dimension, width);

        let mut reference = StateVector::from_basis(dimension, &input).unwrap();
        reference.apply_circuit(&circuit).unwrap();

        for backend in [SimBackend::Dense, SimBackend::Sparse, SimBackend::Auto] {
            for threads in [1, 4] {
                let pool = WorkStealingPool::with_threads(threads);
                let mut state = SimState::from_basis(dimension, &input, backend).unwrap();
                state.apply_circuit_on(&circuit, Some(&pool)).unwrap();
                let fused = state.into_statevector();
                prop_assert_eq!(
                    reference.amplitudes(), fused.amplitudes(),
                    "backend {} × {} threads diverged", backend, threads
                );
            }
        }
    }
}

/// Sequential and pool-parallel fused application are *byte*-identical (not
/// merely `==`-equal): the parallel path splits the register into disjoint
/// whole-block chunks and runs the identical kernel in each.
#[test]
fn parallel_dispatch_is_byte_identical() {
    let dimension = Dimension::new(3).unwrap();
    let width = 10; // 3^10 = 59049 states ≥ the parallel threshold.
    let seeds: Vec<u64> = (0..12).map(|i| i * 9973 + 17).collect();
    let circuit = build_circuit(dimension, width, &seeds);
    let program = FusedProgram::compile(&circuit, width).unwrap();

    let input = vec![0u32; width];
    let mut sequential = StateVector::from_basis(dimension, &input).unwrap();
    sequential.apply_fused_on(&program, None).unwrap();

    for threads in [1, 2, 4] {
        let pool = WorkStealingPool::with_threads(threads);
        let mut parallel = StateVector::from_basis(dimension, &input).unwrap();
        parallel.apply_fused_on(&program, Some(&pool)).unwrap();
        for (a, b) in sequential.amplitudes().iter().zip(parallel.amplitudes()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits(), "{threads} threads");
            assert_eq!(a.im.to_bits(), b.im.to_bits(), "{threads} threads");
        }
    }
}

/// A run of same-target classical gates straddling a non-commuting gate must
/// split into two traversals — fusing across the unitary would reorder
/// non-commuting operations.
#[test]
fn fusion_run_splits_at_a_non_commuting_gate() {
    let dimension = Dimension::new(3).unwrap();
    let width = 4;
    let q0 = QuditId::new(0);
    let q1 = QuditId::new(1);
    let mut rng = StdRng::seed_from_u64(7);
    let unitary = SingleQuditOp::Unitary(random_single_qudit_unitary(dimension, &mut rng));

    // Add(1) q0 · U q1 · Add(1) q0: the unitary on q1 is non-classical, so
    // even though its wire is disjoint it must close the open q0 run.
    let mut straddled = Circuit::new(dimension, width);
    straddled
        .push(Gate::single(SingleQuditOp::Add(1), q0))
        .unwrap();
    straddled.push(Gate::single(unitary.clone(), q1)).unwrap();
    straddled
        .push(Gate::single(SingleQuditOp::Add(1), q0))
        .unwrap();
    let program = FusedProgram::compile(&straddled, width).unwrap();
    assert_eq!(program.traversals(), 3, "run must split at the unitary");
    assert_eq!(program.fused_gates(), 0);

    // The same run interleaved with a *classical* gate on a disjoint wire
    // stays open and fuses into one traversal.
    let mut fusable = Circuit::new(dimension, width);
    fusable
        .push(Gate::single(SingleQuditOp::Add(1), q0))
        .unwrap();
    fusable
        .push(Gate::single(SingleQuditOp::Add(1), q1))
        .unwrap();
    fusable
        .push(Gate::single(SingleQuditOp::Add(1), q0))
        .unwrap();
    let program = FusedProgram::compile(&fusable, width).unwrap();
    assert_eq!(program.traversals(), 2, "disjoint classical gate fuses");
    assert_eq!(program.fused_gates(), 1);

    // Both still match the reference walk exactly.
    for circuit in [&straddled, &fusable] {
        let program = FusedProgram::compile(circuit, width).unwrap();
        let input = vec![1u32; width];
        let mut reference = StateVector::from_basis(dimension, &input).unwrap();
        reference.apply_circuit(circuit).unwrap();
        let mut fused = StateVector::from_basis(dimension, &input).unwrap();
        fused.apply_fused_on(&program, None).unwrap();
        assert_exact(reference.amplitudes(), fused.amplitudes());
    }
}

/// An `AddFrom` chain on a *superposed* input stays on the sparse fast path:
/// block-level nnz tracking sees that the mix touched one target block, so
/// the classical suffix never densifies — and the final amplitudes equal the
/// dense engine's.
#[test]
fn superposed_addfrom_chain_stays_sparse() {
    let dimension = Dimension::new(3).unwrap();
    let width = 8; // 3^8 = 6561 states.
    let mut rng = StdRng::seed_from_u64(11);
    let unitary = SingleQuditOp::Unitary(random_single_qudit_unitary(dimension, &mut rng));

    let mut circuit = Circuit::new(dimension, width);
    // One mix on qudit 0 superposes the input (nnz: 1 → 3)…
    circuit
        .push(Gate::single(unitary, QuditId::new(0)))
        .unwrap();
    // …then a long classical AddFrom chain walks the superposition around
    // the register without ever growing nnz.
    for round in 0..4 {
        for wire in 0..width - 1 {
            circuit
                .push(Gate::add_from(
                    QuditId::new(wire),
                    round % 2 == 1,
                    QuditId::new(wire + 1),
                    vec![],
                ))
                .unwrap();
        }
    }

    let input = vec![0u32; width];
    let mut state = SimState::from_basis(dimension, &input, SimBackend::Sparse).unwrap();
    state.apply_circuit(&circuit).unwrap();
    assert!(
        state.is_sparse(),
        "block-nnz tracking must keep the AddFrom chain sparse"
    );
    assert_eq!(state.nnz(), 3, "AddFrom relocates, never grows, nnz");

    let mut reference = StateVector::from_basis(dimension, &input).unwrap();
    reference.apply_circuit(&circuit).unwrap();
    let sparse = state.into_statevector();
    assert_eq!(reference.amplitudes(), sparse.amplitudes());
}
