//! Theorem IV.1: exact synthesis of arbitrary `n`-qudit unitaries with one
//! clean ancilla.
//!
//! The unitary is first decomposed into two-level unitaries (Givens
//! rotations).  Each two-level unitary between basis states `|a⟩` and `|b⟩`
//! is conjugated by singly-controlled relabelling gates (the same trick as
//! Fig. 11) so that it becomes an `(n−1)`-controlled single-qudit unitary,
//! which is then synthesised with the Fig. 1(b) construction using the single
//! clean ancilla.  The paper's contribution is exactly this last step: the
//! prior-work synthesis (ref. 5) needed `⌈(n−2)/(d−2)⌉` clean ancillas, the
//! multi-controlled gates of Section III reduce that to one.

use qudit_core::math::SquareMatrix;
use qudit_core::pipeline::PassManager;
use qudit_core::{
    AncillaKind, AncillaUsage, Circuit, Control, Dimension, Gate, QuditId, SingleQuditOp,
};
use qudit_sim::basis::index_to_digits;
use qudit_synthesis::{emit_controlled_unitary, LowerToElementary, Resources, SynthesisError};

use crate::two_level::{two_level_decompose, TwoLevelUnitary};

/// Register layout of a unitary synthesis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitaryLayout {
    /// The qudits carrying the unitary's register.
    pub variables: Vec<QuditId>,
    /// The clean ancilla (present for `n ≥ 3`; `None` otherwise).
    pub clean_ancilla: Option<QuditId>,
    /// Total register width.
    pub width: usize,
}

/// The result of synthesising an `n`-qudit unitary.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitarySynthesis {
    circuit: Circuit,
    layout: UnitaryLayout,
    resources: Resources,
    two_level_factors: usize,
}

impl UnitarySynthesis {
    /// The synthesised circuit (macro-gate level; contains singly-controlled
    /// general unitaries plus the classical Toffoli scaffolding).
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The register layout.
    pub fn layout(&self) -> &UnitaryLayout {
        &self.layout
    }

    /// Gate and ancilla counts.  `g_gates` is 0 because general controlled
    /// unitaries have no G-gate expansion; the two-qudit gate count is the
    /// paper's metric for unitary synthesis.
    pub fn resources(&self) -> &Resources {
        &self.resources
    }

    /// Number of two-level factors in the Givens decomposition.
    pub fn two_level_factors(&self) -> usize {
        self.two_level_factors
    }
}

/// Synthesiser for arbitrary `n`-qudit unitaries (Theorem IV.1).
///
/// # Example
///
/// ```
/// # use qudit_core::Dimension;
/// # use qudit_core::math::SquareMatrix;
/// # use qudit_unitary::UnitarySynthesizer;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = Dimension::new(3)?;
/// let identity = SquareMatrix::identity(9);
/// let synthesis = UnitarySynthesizer::new(d)?.synthesize(&identity, 2)?;
/// assert_eq!(synthesis.two_level_factors(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitarySynthesizer {
    dimension: Dimension,
}

impl UnitarySynthesizer {
    /// Creates a synthesiser for `d`-level qudits.
    ///
    /// # Errors
    ///
    /// Returns an error when `d < 3`.
    pub fn new(dimension: Dimension) -> Result<Self, SynthesisError> {
        if dimension.get() < 3 {
            return Err(SynthesisError::DimensionTooSmall {
                dimension: dimension.get(),
                minimum: 3,
            });
        }
        Ok(UnitarySynthesizer { dimension })
    }

    /// The qudit dimension.
    pub fn dimension(&self) -> Dimension {
        self.dimension
    }

    /// Synthesises a `d^n × d^n` unitary over `n` qudits.
    ///
    /// The register layout is `variables (0 … n−1)` plus, for `n ≥ 3`, the
    /// clean ancilla on qudit `n`.
    ///
    /// # Errors
    ///
    /// Returns an error when the matrix size is not `d^n` or the matrix is
    /// not unitary.
    pub fn synthesize(
        &self,
        unitary: &SquareMatrix,
        variables: usize,
    ) -> Result<UnitarySynthesis, SynthesisError> {
        let dimension = self.dimension;
        let expected = dimension.register_size(variables);
        if unitary.size() != expected {
            return Err(SynthesisError::Core(
                qudit_core::QuditError::MatrixShapeMismatch {
                    found: unitary.size(),
                    expected,
                },
            ));
        }
        let factors = two_level_decompose(unitary).map_err(SynthesisError::from)?;

        let needs_ancilla = variables >= 3;
        let width = variables + usize::from(needs_ancilla || variables >= 2);
        let variable_ids: Vec<QuditId> = (0..variables).map(QuditId::new).collect();
        let clean = if width > variables {
            Some(QuditId::new(variables))
        } else {
            None
        };

        let mut circuit = Circuit::new(dimension, width.max(1));
        for factor in &factors {
            self.emit_two_level(&mut circuit, &variable_ids, factor, clean)?;
        }

        let ancillas = if needs_ancilla {
            AncillaUsage::of_kind(AncillaKind::Clean, 1)
        } else {
            AncillaUsage::none()
        };
        // General unitary gates have no G-gate expansion; report macro and
        // elementary (two-qudit) counts from the elementary-lowering pass.
        let report = PassManager::new()
            .with_pass(LowerToElementary)
            .run(circuit.clone())
            .map_err(SynthesisError::from)?;
        let elementary = &report.stats[0].after;
        let resources = Resources {
            width: circuit.width(),
            macro_gates: circuit.len(),
            elementary_gates: elementary.gates,
            two_qudit_gates: elementary.two_qudit_gates,
            g_gates: 0,
            ancillas,
        };
        Ok(UnitarySynthesis {
            circuit,
            layout: UnitaryLayout {
                variables: variable_ids,
                clean_ancilla: clean,
                width: width.max(1),
            },
            resources,
            two_level_factors: factors.len(),
        })
    }

    /// Emits one two-level unitary as a conjugated multi-controlled
    /// single-qudit gate.
    fn emit_two_level(
        &self,
        circuit: &mut Circuit,
        variables: &[QuditId],
        factor: &TwoLevelUnitary,
        clean: Option<QuditId>,
    ) -> Result<(), SynthesisError> {
        let dimension = self.dimension;
        let n = variables.len();
        let a = index_to_digits(factor.i, dimension, n);
        let b = index_to_digits(factor.j, dimension, n);

        if n == 1 {
            // A two-level unitary on a single qudit is just a single-qudit gate.
            let op = embed_block(dimension, a[0], b[0], factor);
            circuit.push(Gate::single(op, variables[0]))?;
            return Ok(());
        }

        // Distinguished position where a and b differ.
        let p = (0..n)
            .rev()
            .find(|&i| a[i] != b[i])
            .expect("two-level factors connect distinct basis states");

        // Step 1 (Fig. 11): relabel |b⟩ so it agrees with |a⟩ everywhere
        // except at p, controlled on qudit p being |b_p⟩.
        let relabel: Vec<Gate> = (0..n)
            .filter(|&i| i != p && a[i] != b[i])
            .map(|i| {
                Gate::controlled(
                    SingleQuditOp::Swap(a[i], b[i]),
                    variables[i],
                    vec![Control::level(variables[p], b[p])],
                )
            })
            .collect();
        for gate in &relabel {
            circuit.push(gate.clone())?;
        }

        // Step 2: the (n−1)-controlled single-qudit unitary, controls at
        // levels a_i.  Conjugate every control level to 0, then use the
        // Fig. 1(b) clean-ancilla construction.
        let controls: Vec<QuditId> = (0..n).filter(|&i| i != p).map(|i| variables[i]).collect();
        let mut conjugation = Vec::new();
        for (index, &qudit) in controls.iter().enumerate() {
            let level = a[(0..n)
                .filter(|&i| i != p)
                .nth(index)
                .expect("index in range")];
            if level != 0 {
                conjugation.push(Gate::single(SingleQuditOp::Swap(0, level), qudit));
            }
        }
        for gate in &conjugation {
            circuit.push(gate.clone())?;
        }
        let op = embed_block(dimension, a[p], b[p], factor);
        let clean = clean.ok_or_else(|| SynthesisError::Lowering {
            reason: "multi-qudit unitary synthesis requires the clean ancilla qudit".to_string(),
        })?;
        emit_controlled_unitary(circuit, &controls, variables[p], &op, clean)?;
        for gate in conjugation.iter().rev() {
            circuit.push(gate.clone())?;
        }

        // Step 3: undo the relabelling.
        for gate in &relabel {
            circuit.push(gate.clone())?;
        }
        Ok(())
    }
}

/// Embeds the 2×2 block of a two-level unitary into a `d × d` single-qudit
/// operation acting on levels `(la, lb)`.
fn embed_block(dimension: Dimension, la: u32, lb: u32, factor: &TwoLevelUnitary) -> SingleQuditOp {
    let d = dimension.as_usize();
    let mut matrix = SquareMatrix::identity(d);
    let (la, lb) = (la as usize, lb as usize);
    matrix[(la, la)] = factor.block[0][0];
    matrix[(la, lb)] = factor.block[0][1];
    matrix[(lb, la)] = factor.block[1][0];
    matrix[(lb, lb)] = factor.block[1][1];
    SingleQuditOp::Unitary(matrix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_core::math::Complex;
    use qudit_sim::random::random_unitary;
    use qudit_sim::statevector::circuit_unitary;
    use qudit_sim::StateVector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dim(d: u32) -> Dimension {
        Dimension::new(d).unwrap()
    }

    #[test]
    fn single_qudit_unitaries_are_reproduced_exactly() {
        let dimension = dim(3);
        let mut rng = StdRng::seed_from_u64(3);
        let u = random_unitary(3, &mut rng);
        let synthesis = UnitarySynthesizer::new(dimension)
            .unwrap()
            .synthesize(&u, 1)
            .unwrap();
        let built = circuit_unitary(synthesis.circuit()).unwrap();
        assert!(built.approx_eq(&u, 1e-7), "distance {}", built.distance(&u));
        assert_eq!(synthesis.resources().clean_ancillas(), 0);
    }

    #[test]
    fn two_qudit_unitaries_are_reproduced_exactly() {
        let dimension = dim(3);
        let mut rng = StdRng::seed_from_u64(11);
        let u = random_unitary(9, &mut rng);
        let synthesis = UnitarySynthesizer::new(dimension)
            .unwrap()
            .synthesize(&u, 2)
            .unwrap();
        // Width 3 (one idle ancilla qudit): the circuit unitary must equal
        // U ⊗ I on the ancilla.
        let built = circuit_unitary(synthesis.circuit()).unwrap();
        let mut expected = SquareMatrix::zeros(27);
        for r in 0..9 {
            for c in 0..9 {
                for anc in 0..3 {
                    expected[(r * 3 + anc, c * 3 + anc)] = u[(r, c)];
                }
            }
        }
        assert!(
            built.approx_eq(&expected, 1e-7),
            "distance {}",
            built.distance(&expected)
        );
    }

    #[test]
    fn three_qudit_unitary_columns_match_on_the_clean_subspace() {
        let dimension = dim(3);
        let mut rng = StdRng::seed_from_u64(19);
        let u = random_unitary(27, &mut rng);
        let synthesis = UnitarySynthesizer::new(dimension)
            .unwrap()
            .synthesize(&u, 3)
            .unwrap();
        assert_eq!(synthesis.resources().clean_ancillas(), 1);
        // Spot-check a handful of columns: |x, ancilla=0⟩ must map to
        // (U|x⟩) ⊗ |0⟩.
        for column in [0usize, 5, 13, 26] {
            let mut digits = index_to_digits(column, dimension, 3);
            digits.push(0); // clean ancilla
            let mut state = StateVector::from_basis(dimension, &digits).unwrap();
            state.apply_circuit(synthesis.circuit()).unwrap();
            for row in 0..27 {
                let mut row_digits = index_to_digits(row, dimension, 3);
                row_digits.push(0);
                let amp = state.amplitude(&row_digits);
                assert!(
                    amp.approx_eq(u[(row, column)], 1e-6),
                    "column {column}, row {row}: {amp} vs {}",
                    u[(row, column)]
                );
            }
            assert!((state.norm_sqr() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn gate_counts_follow_the_d_2n_scaling() {
        let dimension = dim(3);
        let mut rng = StdRng::seed_from_u64(29);
        let u1 = random_unitary(3, &mut rng);
        let u2 = random_unitary(9, &mut rng);
        let s1 = UnitarySynthesizer::new(dimension)
            .unwrap()
            .synthesize(&u1, 1)
            .unwrap();
        let s2 = UnitarySynthesizer::new(dimension)
            .unwrap()
            .synthesize(&u2, 2)
            .unwrap();
        // d^{2n} grows by d² = 9 from n = 1 to n = 2; allow slack for the
        // O(n) factor of the two-level route.
        assert!(s2.resources().two_qudit_gates >= s1.resources().two_qudit_gates);
        assert!(s2.two_level_factors() <= 9 * 10 / 2 + 9);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let dimension = dim(3);
        let synthesizer = UnitarySynthesizer::new(dimension).unwrap();
        // Wrong size.
        assert!(synthesizer
            .synthesize(&SquareMatrix::identity(8), 2)
            .is_err());
        // Not unitary.
        let mut bad = SquareMatrix::identity(9);
        bad[(0, 0)] = Complex::from_real(3.0);
        assert!(synthesizer.synthesize(&bad, 2).is_err());
        assert!(UnitarySynthesizer::new(dim(2)).is_err());
    }
}
