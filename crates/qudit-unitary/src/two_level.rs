//! Two-level (Givens) decomposition of arbitrary unitaries.
//!
//! Any `D × D` unitary is a product of at most `D(D−1)/2 + D` two-level
//! unitaries (unitaries acting non-trivially on at most two basis states).
//! This is the classical first stage of the exact synthesis route used for
//! Theorem IV.1.

use qudit_core::math::{Complex, SquareMatrix};
use qudit_core::{QuditError, Result};

/// Numerical tolerance below which matrix entries are treated as zero.
pub const TWO_LEVEL_TOLERANCE: f64 = 1e-12;

/// A unitary acting non-trivially only on the two basis states `i < j`.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoLevelUnitary {
    /// The first (smaller) basis index.
    pub i: usize,
    /// The second (larger) basis index.
    pub j: usize,
    /// The 2×2 block `[[u_ii, u_ij], [u_ji, u_jj]]`.
    pub block: [[Complex; 2]; 2],
}

impl TwoLevelUnitary {
    /// Creates a two-level unitary.
    ///
    /// # Errors
    ///
    /// Returns an error when `i == j` or the block is not unitary.
    pub fn new(i: usize, j: usize, block: [[Complex; 2]; 2]) -> Result<Self> {
        if i == j {
            return Err(QuditError::DegenerateTransposition { level: i as u32 });
        }
        let (i, j, block) = if i < j {
            (i, j, block)
        } else {
            (
                j,
                i,
                [[block[1][1], block[1][0]], [block[0][1], block[0][0]]],
            )
        };
        let candidate = TwoLevelUnitary { i, j, block };
        if !candidate.block_matrix().is_unitary(1e-8) {
            return Err(QuditError::NotUnitary);
        }
        Ok(candidate)
    }

    /// The 2×2 block as a matrix.
    pub fn block_matrix(&self) -> SquareMatrix {
        let mut m = SquareMatrix::zeros(2);
        m[(0, 0)] = self.block[0][0];
        m[(0, 1)] = self.block[0][1];
        m[(1, 0)] = self.block[1][0];
        m[(1, 1)] = self.block[1][1];
        m
    }

    /// The adjoint (inverse) two-level unitary.
    pub fn adjoint(&self) -> TwoLevelUnitary {
        TwoLevelUnitary {
            i: self.i,
            j: self.j,
            block: [
                [self.block[0][0].conj(), self.block[1][0].conj()],
                [self.block[0][1].conj(), self.block[1][1].conj()],
            ],
        }
    }

    /// Embeds the two-level unitary into a full `size × size` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `j ≥ size`.
    pub fn to_full(&self, size: usize) -> SquareMatrix {
        assert!(self.j < size, "two-level indices must fit the matrix size");
        let mut m = SquareMatrix::identity(size);
        m[(self.i, self.i)] = self.block[0][0];
        m[(self.i, self.j)] = self.block[0][1];
        m[(self.j, self.i)] = self.block[1][0];
        m[(self.j, self.j)] = self.block[1][1];
        m
    }

    /// Returns `true` if the block is (numerically) the identity.
    pub fn is_identity(&self) -> bool {
        self.block[0][0].approx_eq(Complex::ONE, TWO_LEVEL_TOLERANCE)
            && self.block[1][1].approx_eq(Complex::ONE, TWO_LEVEL_TOLERANCE)
            && self.block[0][1].approx_eq(Complex::ZERO, TWO_LEVEL_TOLERANCE)
            && self.block[1][0].approx_eq(Complex::ZERO, TWO_LEVEL_TOLERANCE)
    }
}

/// Decomposes a unitary into two-level unitaries.
///
/// The returned factors are in **application order**: applying them
/// first-to-last (i.e. multiplying `V_m · … · V_1` as matrices) reproduces
/// the input unitary.
///
/// # Errors
///
/// Returns an error when the input is not unitary.
pub fn two_level_decompose(unitary: &SquareMatrix) -> Result<Vec<TwoLevelUnitary>> {
    if !unitary.is_unitary(1e-8) {
        return Err(QuditError::NotUnitary);
    }
    let size = unitary.size();
    let mut work = unitary.clone();
    // Reduction factors T with T_m · … · T_1 · U = I.
    let mut reducers: Vec<TwoLevelUnitary> = Vec::new();

    for col in 0..size {
        // Eliminate the entries below the diagonal of `col`.
        for row in (col + 1)..size {
            let v = work[(row, col)];
            if v.norm() <= TWO_LEVEL_TOLERANCE {
                continue;
            }
            let u = work[(col, col)];
            let norm = (u.norm_sqr() + v.norm_sqr()).sqrt();
            let block = [
                [u.conj().scale(1.0 / norm), v.conj().scale(1.0 / norm)],
                [v.scale(1.0 / norm), -u.scale(1.0 / norm)],
            ];
            let reducer = TwoLevelUnitary::new(col, row, block)?;
            left_multiply(&mut work, &reducer);
            reducers.push(reducer);
        }
        // Normalise the diagonal phase to 1.
        let phase = work[(col, col)];
        if !phase.approx_eq(Complex::ONE, TWO_LEVEL_TOLERANCE) {
            let partner = if col + 1 < size { col + 1 } else { col - 1 };
            let (i, j, block) = if col < partner {
                (
                    col,
                    partner,
                    [[phase.conj(), Complex::ZERO], [Complex::ZERO, Complex::ONE]],
                )
            } else {
                (
                    partner,
                    col,
                    [[Complex::ONE, Complex::ZERO], [Complex::ZERO, phase.conj()]],
                )
            };
            let reducer = TwoLevelUnitary::new(i, j, block)?;
            left_multiply(&mut work, &reducer);
            reducers.push(reducer);
        }
    }

    // U = T_1† · T_2† · … · T_m†, applied right-to-left; in application order
    // the first factor is T_m†.
    let factors: Vec<TwoLevelUnitary> = reducers
        .iter()
        .rev()
        .map(TwoLevelUnitary::adjoint)
        .filter(|f| !f.is_identity())
        .collect();
    Ok(factors)
}

/// Left-multiplies `work` by a two-level unitary in place (updates rows `i`
/// and `j`).
fn left_multiply(work: &mut SquareMatrix, factor: &TwoLevelUnitary) {
    let size = work.size();
    for col in 0..size {
        let a = work[(factor.i, col)];
        let b = work[(factor.j, col)];
        work[(factor.i, col)] = factor.block[0][0] * a + factor.block[0][1] * b;
        work[(factor.j, col)] = factor.block[1][0] * a + factor.block[1][1] * b;
    }
}

/// Multiplies the two-level factors (in application order) back into a full
/// matrix; used by tests and the experiment harness to validate
/// decompositions.
pub fn recompose(factors: &[TwoLevelUnitary], size: usize) -> SquareMatrix {
    let mut product = SquareMatrix::identity(size);
    for factor in factors {
        product = &factor.to_full(size) * &product;
    }
    product
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fourier(size: usize) -> SquareMatrix {
        let mut m = SquareMatrix::zeros(size);
        let scale = 1.0 / (size as f64).sqrt();
        for r in 0..size {
            for c in 0..size {
                let angle = 2.0 * std::f64::consts::PI * (r * c) as f64 / size as f64;
                m[(r, c)] = Complex::from_phase(angle).scale(scale);
            }
        }
        m
    }

    #[test]
    fn decomposition_reproduces_the_unitary() {
        for size in [2usize, 3, 4, 5, 9] {
            let u = fourier(size);
            let factors = two_level_decompose(&u).unwrap();
            let rebuilt = recompose(&factors, size);
            assert!(
                rebuilt.approx_eq(&u, 1e-8),
                "size {size}: distance {}",
                rebuilt.distance(&u)
            );
            assert!(factors.len() <= size * (size - 1) / 2 + size);
        }
    }

    #[test]
    fn identity_decomposes_to_nothing() {
        let id = SquareMatrix::identity(5);
        let factors = two_level_decompose(&id).unwrap();
        assert!(factors.is_empty());
    }

    #[test]
    fn permutation_matrices_decompose() {
        let p = SquareMatrix::from_permutation(&[2, 0, 1, 3]).unwrap();
        let factors = two_level_decompose(&p).unwrap();
        let rebuilt = recompose(&factors, 4);
        assert!(rebuilt.approx_eq(&p, 1e-9));
    }

    #[test]
    fn non_unitary_inputs_are_rejected() {
        let mut m = SquareMatrix::identity(3);
        m[(0, 0)] = Complex::from_real(2.0);
        assert!(two_level_decompose(&m).is_err());
    }

    #[test]
    fn two_level_constructor_validates() {
        let ok = TwoLevelUnitary::new(
            0,
            2,
            [[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]],
        );
        assert!(ok.is_ok());
        let degenerate = TwoLevelUnitary::new(
            1,
            1,
            [[Complex::ONE, Complex::ZERO], [Complex::ZERO, Complex::ONE]],
        );
        assert!(degenerate.is_err());
        let not_unitary = TwoLevelUnitary::new(
            0,
            1,
            [[Complex::ONE, Complex::ONE], [Complex::ZERO, Complex::ONE]],
        );
        assert!(not_unitary.is_err());
    }

    #[test]
    fn swapped_indices_are_normalised() {
        let v = TwoLevelUnitary::new(
            3,
            1,
            [[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]],
        )
        .unwrap();
        assert!(v.i < v.j);
        assert!(v.to_full(4).is_unitary(1e-9));
    }
}
