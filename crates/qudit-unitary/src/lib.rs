//! Exact synthesis of arbitrary `n`-qudit unitaries with a single clean
//! ancilla — Theorem IV.1 of *Optimal Synthesis of Multi-Controlled Qudit
//! Gates* (DAC 2023).
//!
//! * [`two_level`] — Givens (two-level) decomposition of arbitrary unitaries;
//! * [`UnitarySynthesizer`] — maps each two-level factor to a multi-controlled
//!   single-qudit gate synthesised with the paper's constructions, using one
//!   clean ancilla in total.
//!
//! # Example
//!
//! ```
//! use qudit_core::Dimension;
//! use qudit_sim::random::random_unitary;
//! use qudit_unitary::UnitarySynthesizer;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let d = Dimension::new(3)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let unitary = random_unitary(9, &mut rng);
//! let synthesis = UnitarySynthesizer::new(d)?.synthesize(&unitary, 2)?;
//! assert!(synthesis.resources().two_qudit_gates > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod synthesis;
pub mod two_level;

pub use synthesis::{UnitaryLayout, UnitarySynthesis, UnitarySynthesizer};
pub use two_level::{recompose, two_level_decompose, TwoLevelUnitary};
