//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment of this repository has no network access, so the
//! workspace vendors the minimal API surface its benches use: [`Criterion`],
//! [`BenchmarkId`], benchmark groups with `sample_size` / `bench_with_input`
//! / `finish`, [`Bencher::iter`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical analysis, each benchmark runs a small
//! fixed number of iterations and prints the mean wall-clock time — enough
//! to eyeball regressions without pulling in the full dependency tree.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::hint::black_box;
use std::time::Instant;

/// Number of timed iterations per benchmark.
const ITERATIONS: u32 = 10;

/// Identifier of a benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An identifier combining a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An identifier consisting of a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    mean_nanos: f64,
}

impl Bencher {
    /// Times the routine over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up iteration, then timed iterations.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..ITERATIONS {
            black_box(routine());
        }
        self.mean_nanos = start.elapsed().as_nanos() as f64 / f64::from(ITERATIONS);
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        report(&name.to_string(), bencher.mean_nanos);
        self
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the iteration count is fixed.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        report(&format!("{}/{id}", self.name), bencher.mean_nanos);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn report(name: &str, mean_nanos: f64) {
    if mean_nanos >= 1_000_000.0 {
        println!(
            "bench: {name:<60} {:>12.3} ms/iter",
            mean_nanos / 1_000_000.0
        );
    } else {
        println!("bench: {name:<60} {:>12.1} ns/iter", mean_nanos);
    }
}

/// Groups benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

/// Emits `main` for one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("sum");
        group.sample_size(10);
        for &n in &[10u64, 100] {
            group.bench_with_input(BenchmarkId::new("range", n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
        }
        group.finish();
        c.bench_function("constant", |b| b.iter(|| 1 + 1));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
