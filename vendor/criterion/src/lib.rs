//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment of this repository has no network access, so the
//! workspace vendors the minimal API surface its benches use: [`Criterion`],
//! [`BenchmarkId`], benchmark groups with `sample_size` / `bench_with_input`
//! / `finish`, [`Bencher::iter`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical analysis, each benchmark runs a small
//! fixed number of iterations and prints the mean wall-clock time — enough
//! to eyeball regressions without pulling in the full dependency tree.
//!
//! # CI hooks
//!
//! Two environment variables support the CI bench-smoke step:
//!
//! * `QUDIT_BENCH_ITERATIONS` — overrides the timed iteration count
//!   (default 10).  Set it to `1`/`2` for a quick smoke run.
//! * `QUDIT_BENCH_JSON` — a path; when set, [`criterion_main!`] writes every
//!   recorded result as a JSON summary (`{"results": [{"name": …,
//!   "mean_ns": …}, …]}`) to that path after all groups have run, appending
//!   when several bench binaries share the file.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::hint::black_box;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default number of timed iterations per benchmark.
const DEFAULT_ITERATIONS: u32 = 10;

/// Environment variable overriding the timed iteration count.
pub const ITERATIONS_ENV_VAR: &str = "QUDIT_BENCH_ITERATIONS";

/// Environment variable naming the JSON summary file (unset: no summary).
pub const JSON_ENV_VAR: &str = "QUDIT_BENCH_JSON";

/// Number of timed iterations per benchmark (see [`ITERATIONS_ENV_VAR`]).
fn iterations() -> u32 {
    std::env::var(ITERATIONS_ENV_VAR)
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_ITERATIONS)
}

/// Every result recorded so far in this process, in execution order.
fn recorded() -> &'static Mutex<Vec<(String, f64)>> {
    static RECORDED: OnceLock<Mutex<Vec<(String, f64)>>> = OnceLock::new();
    RECORDED.get_or_init(|| Mutex::new(Vec::new()))
}

/// Identifier of a benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An identifier combining a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An identifier consisting of a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    mean_nanos: f64,
}

impl Bencher {
    /// Times the routine over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up iteration, then timed iterations.
        black_box(routine());
        let timed = iterations();
        let start = Instant::now();
        for _ in 0..timed {
            black_box(routine());
        }
        self.mean_nanos = start.elapsed().as_nanos() as f64 / f64::from(timed);
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        report(&name.to_string(), bencher.mean_nanos);
        self
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the iteration count is fixed.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        report(&format!("{}/{id}", self.name), bencher.mean_nanos);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Records an externally measured value (in nanoseconds) into the process
/// summary under the given name.
///
/// For benches whose metric is not a simple mean over `Bencher::iter`
/// iterations — latency percentiles under concurrent load, for example —
/// the harness cannot time the routine itself.  Such benches measure on
/// their own and report here; the value flows into the printed table and
/// the JSON summary exactly like a timed mean.
pub fn record(name: &str, nanos: f64) {
    report(name, nanos);
}

fn report(name: &str, mean_nanos: f64) {
    if mean_nanos >= 1_000_000.0 {
        println!(
            "bench: {name:<60} {:>12.3} ms/iter",
            mean_nanos / 1_000_000.0
        );
    } else {
        println!("bench: {name:<60} {:>12.1} ns/iter", mean_nanos);
    }
    recorded()
        .lock()
        .expect("bench result lock")
        .push((name.to_string(), mean_nanos));
}

/// Escapes a string for embedding in a JSON string literal (the benchmark
/// names are plain ASCII, so only quotes and backslashes matter; control
/// characters are escaped defensively).
fn json_escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders every recorded result of this process as a JSON summary.
pub fn json_summary() -> String {
    let results = recorded().lock().expect("bench result lock");
    let entries: Vec<String> = results
        .iter()
        .map(|(name, mean_ns)| {
            format!(
                "    {{\"name\": \"{}\", \"mean_ns\": {:.1}}}",
                json_escape(name),
                mean_ns
            )
        })
        .collect();
    format!("{{\n  \"results\": [\n{}\n  ]\n}}\n", entries.join(",\n"))
}

/// Writes the JSON summary to the path in [`JSON_ENV_VAR`], if set.
///
/// Called by [`criterion_main!`] after every group has run.  When the file
/// already exists (several bench binaries writing one summary), the new
/// results are merged by concatenating the `results` arrays.
pub fn write_json_summary_if_requested() {
    let Ok(path) = std::env::var(JSON_ENV_VAR) else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let mut summary = json_summary();
    if let Ok(existing) = std::fs::read_to_string(&path) {
        if let Some(merged) = merge_summaries(&existing, &summary) {
            summary = merged;
        }
    }
    if let Err(error) = std::fs::write(&path, &summary) {
        eprintln!("bench: failed to write JSON summary to {path}: {error}");
    } else {
        println!("bench: wrote JSON summary to {path}");
    }
}

/// Concatenates the `results` arrays of two summaries produced by
/// [`json_summary`]. Returns `None` when the existing file is not one of
/// ours (it is then overwritten).
fn merge_summaries(existing: &str, new: &str) -> Option<String> {
    let body = |s: &str| {
        let start = s.find("[\n")? + 2;
        let end = s.rfind("\n  ]")?;
        (start <= end).then(|| s[start..end].to_string())
    };
    let old_body = body(existing)?;
    let new_body = body(new)?;
    let joined = if old_body.trim().is_empty() {
        new_body
    } else if new_body.trim().is_empty() {
        old_body
    } else {
        format!("{old_body},\n{new_body}")
    };
    Some(format!("{{\n  \"results\": [\n{joined}\n  ]\n}}\n"))
}

/// Groups benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

/// Emits `main` for one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_summary_if_requested();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("sum");
        group.sample_size(10);
        for &n in &[10u64, 100] {
            group.bench_with_input(BenchmarkId::new("range", n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
        }
        group.finish();
        c.bench_function("constant", |b| b.iter(|| 1 + 1));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_and_records() {
        benches();
        let summary = json_summary();
        assert!(summary.contains("\"results\""));
        assert!(summary.contains("sum/range/10"));
        assert!(summary.contains("\"mean_ns\""));
    }

    #[test]
    fn externally_measured_values_are_recorded() {
        record("external/p99", 1234.5);
        assert!(json_summary().contains("external/p99"));
    }

    #[test]
    fn json_escaping_covers_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }

    #[test]
    fn summaries_merge_by_concatenating_results() {
        let a = "{\n  \"results\": [\n    {\"name\": \"a\", \"mean_ns\": 1.0}\n  ]\n}\n";
        let b = "{\n  \"results\": [\n    {\"name\": \"b\", \"mean_ns\": 2.0}\n  ]\n}\n";
        let merged = merge_summaries(a, b).unwrap();
        assert!(merged.contains("\"a\""));
        assert!(merged.contains("\"b\""));
        assert!(merge_summaries("not json", b).is_none());
    }
}
