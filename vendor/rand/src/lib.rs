//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment of this repository has no network access, so the
//! workspace vendors the *minimal* API surface it actually uses: the [`Rng`]
//! trait with [`Rng::gen_range`], [`SeedableRng::seed_from_u64`] and
//! [`rngs::StdRng`].  The generator is a SplitMix64 — deterministic, seedable
//! and statistically more than good enough for test-input generation and
//! benchmark workloads (it is *not* cryptographically secure, and neither is
//! the real `StdRng` contract relied upon for that here).
//!
//! The API is signature-compatible with `rand 0.8` for the subset provided,
//! so swapping the real crate back in is a one-line manifest change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator.
///
/// Only [`Rng::next_u64`] is required; everything else is derived.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from the given range.
    ///
    /// Supports `Range` and `RangeInclusive` over the unsigned integer types
    /// and `Range<f64>`, which covers every use in this workspace.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// A range that a uniform sample of type `T` can be drawn from.
///
/// Mirrors the `(T, R)` shape of the real crate — with blanket impls over
/// [`SampleUniform`] — so that integer-literal ranges infer their type from
/// the call site.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<G: Rng>(self, rng: &mut G) -> T;
}

/// Types that uniform samples can be drawn for.
pub trait SampleUniform: Sized {
    /// Draws a sample from `[start, end)` (`[start, end]` when `inclusive`).
    fn sample_between<G: Rng>(start: Self, end: Self, inclusive: bool, rng: &mut G) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<G: Rng>(self, rng: &mut G) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<G: Rng>(self, rng: &mut G) -> T {
        T::sample_between(*self.start(), *self.end(), true, rng)
    }
}

macro_rules! impl_uint_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_between<G: Rng>(start: $t, end: $t, inclusive: bool, rng: &mut G) -> $t {
                let span = if inclusive {
                    assert!(start <= end, "cannot sample from an empty range");
                    (end - start) as u64 + 1
                } else {
                    assert!(start < end, "cannot sample from an empty range");
                    (end - start) as u64
                };
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_uint_sample_uniform!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_between<G: Rng>(start: f64, end: f64, _inclusive: bool, rng: &mut G) -> f64 {
        assert!(start < end, "cannot sample from an empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        start + unit * (end - start)
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3u32..9);
            assert!((3..9).contains(&x));
            let y = rng.gen_range(0usize..=4);
            assert!(y <= 4);
            let z = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&z));
        }
    }

    #[test]
    fn samples_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
