OPENQASM 3.0;
shift(1) q[0];
