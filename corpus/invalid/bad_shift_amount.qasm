qudit[3] q[1];
shift(3) q[0];
