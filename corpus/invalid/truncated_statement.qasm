qudit[3] q[2];
ctrl(odd) @ shift(2) q[0],
