OPENQASM 2.0;
qudit[3] q[2];
