qudit[3] q[2];
shift(1) q[2];
