qudit[3] q[2];
hadamard q[0];
