qudit[3] q[2];
shift(1) r[0];
