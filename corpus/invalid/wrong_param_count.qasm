qudit[4] q[1];
perm(1, 0) q[0];
