qudit[3] q[2];
qudit[3] r[2];
