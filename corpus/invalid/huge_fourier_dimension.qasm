qudit[100] q[1];
fourier q[0];
