// Classical single-qudit generators over an even dimension (the odd
// parity flip lives in the odd-dimension corpus files), header omitted.
qudit[4] q[2];
swap(0, 3) q[0];
shift(2) q[1];
parityflip_e q[0];
perm(1, 2, 3, 0) q[0];
