// Comments may appear anywhere a token boundary can,
// and statements may sprawl across lines.
qudit[3] // dimension three
  q[2];  // two wires
ctrl(odd)
  @ shift(2)
  q[0],
  q[1]; // trailing comment
