// The dialect restricted to d = 2 is plain qubit reversible logic.  The
// paper's multi-controlled synthesis needs d >= 4, so this file sticks to
// the single-control subset the pipeline supports at d = 2.
OPENQASM 3.0;
qudit[2] q[3];
shift(1) q[0]; // a NOT gate
ctrl(1) @ shift(1) q[0], q[1]; // CNOT
swap(0, 1) q[2];
