// A user-chosen register name must survive print → parse round trips.
qudit[3] work[3];
ctrl @ swap(0, 1) work[0], work[2];
shift(2) work[1];
sum work[1], work[2];
