// An explicit unitary: 2*d*d reals, row-major, re before im.  Exponents,
// signs and negative zero are all part of the literal grammar.
qudit[2] q[1];
unitary(0.7071067811865476, 0, 0.7071067811865476, -0, 0.7071067811865476, 1e-300, -0.7071067811865476, 0) q[0];
