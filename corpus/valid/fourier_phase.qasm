// Input-only Clifford sugar: these lower to explicit unitaries and print
// back as `unitary(...)`.
qudit[5] q[2];
fourier q[0];
phase q[1];
ctrl(even) @ fourier q[1], q[0];
