// The smallest valid program: a version header and one register.
OPENQASM 3.0;
qudit[3] q[4];
