// All control-predicate spellings, including the bare `ctrl` sugar for
// level-0 and stacked modifiers.
OPENQASM 3;
qudit[3] q[4];
ctrl @ shift(1) q[0], q[1];
ctrl(2) @ swap(0, 1) q[1], q[2];
ctrl(odd) @ parityflip_o q[2], q[3];
ctrl(even) @ perm(2, 0, 1) q[3], q[0];
ctrl(nonzero) @ shift(2) q[0], q[2];
ctrl @ ctrl(1) @ swap(1, 2) q[0], q[1], q[2];
