// The two-qudit SUM gate and its inverse, bare and controlled.
qudit[5] q[3];
sum q[0], q[1];
sumdg q[1], q[2];
ctrl(odd) @ sum q[2], q[0], q[1];
ctrl(3) @ sumdg q[0], q[1], q[2];
