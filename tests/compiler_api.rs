//! End-to-end suite for the `Compiler` / `CompileOptions` facade:
//!
//! * legacy-shim equivalence: every deprecated `Pipeline::standard*` preset
//!   assembles a `PassManager` with the identical pass list as its
//!   builder-constructed equivalent, and compiles the E10-family k-Toffoli
//!   sweep gate-for-gate identically (statistics included) — the preset
//!   matrix cannot drift from the builder;
//! * knob coverage: every combination of the orthogonal option knobs
//!   assembles, and the assembled pass list is exactly the one the options
//!   describe;
//! * property-based round-trip: random mixed multi-controlled circuits
//!   compile under `Verify::Exhaustive` across
//!   `SimBackend::{Dense, Sparse, Auto}` and `Threads::{Fixed(1), Fixed(4)}`
//!   with bit-identical outputs (the CI thread matrix additionally runs the
//!   whole suite under `QUDIT_THREADS=1` and `=4`).

use proptest::prelude::*;
use qudit_core::cache::LoweringCache;
use qudit_core::pipeline::{CacheMode, PassManager};
use qudit_core::{Circuit, Dimension, Gate, QuditId, SingleQuditOp};
use qudit_sim::SimBackend;
use qudit_synthesis::{
    emit_multi_controlled, CompileOptions, KToffoli, OptLevel, Pipeline, Threads, Verify,
};

fn dim(d: u32) -> Dimension {
    Dimension::new(d).unwrap()
}

/// The E10-family macro circuits the equivalence checks compile.
fn e10_family(ks: &[usize]) -> Vec<(Dimension, usize, Circuit)> {
    let mut jobs = Vec::new();
    for &d in &[3u32, 4] {
        for &k in ks {
            let synthesis = KToffoli::new(dim(d), k).unwrap().synthesize().unwrap();
            jobs.push((
                dim(d),
                synthesis.layout().width,
                synthesis.circuit().clone(),
            ));
        }
    }
    jobs
}

/// Asserts a legacy preset manager and its builder equivalent agree on the
/// pass list and compile every job identically — circuits gate for gate,
/// statistics profile for profile (wall times aside).
fn assert_equivalent(
    name: &str,
    legacy: PassManager,
    options: CompileOptions,
    jobs: &[(Dimension, usize, Circuit)],
) {
    let modern = options.build_manager();
    assert_eq!(
        legacy.pass_names(),
        modern.pass_names(),
        "{name}: pass lists diverged"
    );
    for (_, _, job) in jobs {
        let legacy_report = legacy.run(job.clone()).unwrap();
        let modern_report = modern.run(job.clone()).unwrap();
        assert_eq!(
            legacy_report.circuit, modern_report.circuit,
            "{name}: compiled circuits diverged"
        );
        assert_eq!(
            legacy_report.stats.len(),
            modern_report.stats.len(),
            "{name}: stage counts diverged"
        );
        for (a, b) in legacy_report.stats.iter().zip(&modern_report.stats) {
            assert_eq!(a.pass, b.pass, "{name}: pass names diverged");
            assert_eq!(a.before, b.before, "{name}: input profiles diverged");
            assert_eq!(a.after, b.after, "{name}: output profiles diverged");
            assert_eq!(a.cache, b.cache, "{name}: cache tallies diverged");
        }
    }
}

/// Every legacy shim must assemble and compile exactly like its
/// `CompileOptions` equivalent (the migration documented on each shim).
#[test]
#[allow(deprecated)]
fn legacy_shims_match_their_builder_equivalents() {
    // Unverified presets: the full quick E10 family.
    let sweep = e10_family(&[3, 4, 6]);
    for &(dimension, width, _) in &sweep {
        assert_equivalent(
            "standard",
            Pipeline::standard(dimension, width),
            CompileOptions::new().shape(dimension, width),
            &sweep
                .iter()
                .filter(|(d, w, _)| *d == dimension && *w == width)
                .cloned()
                .collect::<Vec<_>>(),
        );
        assert_equivalent(
            "standard_scheduled",
            Pipeline::standard_scheduled(dimension, width),
            CompileOptions::new().schedule(true).shape(dimension, width),
            &sweep
                .iter()
                .filter(|(d, w, _)| *d == dimension && *w == width)
                .cloned()
                .collect::<Vec<_>>(),
        );
    }

    // Shape-agnostic batch presets: one manager over the whole sweep.
    assert_equivalent(
        "standard_batch",
        Pipeline::standard_batch(),
        CompileOptions::new().cache(CacheMode::PerRun),
        &sweep,
    );
    assert_equivalent(
        "standard_batch_scheduled",
        Pipeline::standard_batch_scheduled(),
        CompileOptions::new()
            .schedule(true)
            .cache(CacheMode::PerRun),
        &sweep,
    );
    assert_equivalent(
        "standard_batch_with_cache(Off)",
        Pipeline::standard_batch_with_cache(CacheMode::Off),
        CompileOptions::new().cache(CacheMode::Off),
        &sweep,
    );
    // Each side gets its own shared cache: the tallies must evolve
    // identically from a cold start (sharing one instance would hand the
    // second runner a warm cache).
    assert_equivalent(
        "standard_batch_with_cache(Shared)",
        Pipeline::standard_batch_with_cache(CacheMode::Shared(LoweringCache::shared())),
        CompileOptions::new().cache(CacheMode::Shared(LoweringCache::shared())),
        &sweep,
    );

    // Verified presets: a reduced family (verification re-simulates every
    // stage, so keep the registers small).
    let verified_sweep = e10_family(&[3]);
    for &(dimension, width, _) in &verified_sweep {
        let jobs: Vec<_> = verified_sweep
            .iter()
            .filter(|(d, w, _)| *d == dimension && *w == width)
            .cloned()
            .collect();
        assert_equivalent(
            "standard_verified",
            Pipeline::standard_verified(dimension, width),
            CompileOptions::new()
                .verify(Verify::Exhaustive)
                .shape(dimension, width),
            &jobs,
        );
        assert_equivalent(
            "standard_verified_with_backend",
            Pipeline::standard_verified_with_backend(dimension, width, SimBackend::Sparse),
            CompileOptions::new()
                .verify(Verify::Exhaustive)
                .backend(SimBackend::Sparse)
                .shape(dimension, width),
            &jobs,
        );
        assert_equivalent(
            "standard_scheduled_verified",
            Pipeline::standard_scheduled_verified(dimension, width),
            CompileOptions::new()
                .schedule(true)
                .verify(Verify::Exhaustive)
                .shape(dimension, width),
            &jobs,
        );
        assert_equivalent(
            "standard_scheduled_verified_with_backend",
            Pipeline::standard_scheduled_verified_with_backend(dimension, width, SimBackend::Dense),
            CompileOptions::new()
                .schedule(true)
                .verify(Verify::Exhaustive)
                .backend(SimBackend::Dense)
                .shape(dimension, width),
            &jobs,
        );
    }
}

/// Every combination of the orthogonal knobs assembles, and the assembled
/// pass list is exactly the one the options describe.
#[test]
fn every_knob_combination_assembles() {
    let verifies = [Verify::Off, Verify::Exhaustive, Verify::Sampled(16)];
    let backends = [SimBackend::Dense, SimBackend::Sparse, SimBackend::Auto];
    let caches = || {
        [
            CacheMode::Off,
            CacheMode::PerRun,
            CacheMode::Shared(LoweringCache::shared()),
        ]
    };
    let threads = [Threads::Auto, Threads::Fixed(1), Threads::Fixed(4)];
    let mut combinations = 0usize;
    for verify in verifies {
        for backend in backends {
            for fusion in [true, false] {
                for cancel in [true, false] {
                    for schedule in [true, false] {
                        for cache in caches() {
                            for thread in threads {
                                let options = CompileOptions::new()
                                    .verify(verify)
                                    .backend(backend)
                                    .fusion(fusion)
                                    .cancel(cancel)
                                    .schedule(schedule)
                                    .cache(cache.clone())
                                    .threads(thread);
                                let manager = options.build_manager();

                                // The pass list is exactly what the knobs select.
                                let mut expected = Vec::new();
                                if fusion {
                                    expected.push("gate-fusion");
                                }
                                expected.extend(["lower-to-elementary", "lower-to-g-gates"]);
                                if cancel {
                                    expected.push("cancel-inverse-pairs");
                                }
                                if schedule {
                                    expected.push("schedule-depth");
                                }
                                let expected: Vec<String> = expected
                                    .iter()
                                    .map(|stage| match verify {
                                        Verify::Off => stage.to_string(),
                                        _ => format!("verify({stage})"),
                                    })
                                    .collect();
                                assert_eq!(manager.pass_names(), expected, "{options:?}");
                                combinations += 1;
                            }
                        }
                    }
                }
            }
        }
    }
    assert_eq!(combinations, 3 * 3 * 2 * 2 * 2 * 3 * 3);
}

/// The pinned pool reaches the verification wrappers: above the parallel
/// sweep threshold (1024 basis states), `Verify::Exhaustive` fans its
/// basis sweep out on the compiler's pool — `Fixed(1)` stays sequential,
/// `Fixed(4)` runs the pool path — and both verdicts and outputs agree.
#[test]
fn pinned_pools_reach_the_verification_sweep() {
    // d=4, k=4 → width 6, 4^6 = 4096 basis states ≥ the parallel-verify
    // threshold, and still within the exhaustive bound.
    let synthesis = KToffoli::new(dim(4), 4).unwrap().synthesize().unwrap();
    let mut reference: Option<Circuit> = None;
    for threads in [Threads::Fixed(1), Threads::Fixed(4)] {
        let compiler = CompileOptions::new()
            .verify(Verify::Exhaustive)
            .threads(threads)
            .compiler();
        let result = compiler.compile(synthesis.circuit()).unwrap();
        assert!(result.verification.is_verified(), "{threads:?}");
        match &reference {
            Some(expected) => assert_eq!(&result.circuit, expected, "{threads:?}"),
            None => reference = Some(result.circuit),
        }
    }
}

/// Builds a circuit of mixed multi-controlled gates over `width` qudits
/// (one spare wire reserved as the borrowed pool for even `d`) — the same
/// workload family as the pipeline proptests.
fn build_mct_circuit(dimension: Dimension, specs: &[(usize, usize, u8, u32, u32)]) -> Circuit {
    let d = dimension.get();
    let max_controls = specs.iter().map(|s| s.0).max().expect("non-empty specs");
    let width = max_controls + 2;
    let mut circuit = Circuit::new(dimension, width);
    for &(k, target_offset, op_kind, shift, level_seed) in specs {
        let op = match op_kind % 3 {
            0 => SingleQuditOp::Swap(0, 1 + shift % (d - 1)),
            1 => SingleQuditOp::Add(1 + shift % (d - 1)),
            _ => SingleQuditOp::Swap(shift % d, (shift + 1) % d),
        };
        let target = QuditId::new(k + (target_offset % (width - k)));
        let controls: Vec<(QuditId, u32)> = (0..k)
            .map(|i| (QuditId::new(i), (level_seed.wrapping_add(i as u32 * 7)) % d))
            .collect();
        let pool: Vec<QuditId> = (0..width)
            .map(QuditId::new)
            .filter(|q| *q != target && !controls.iter().any(|(c, _)| c == q))
            .collect();
        emit_multi_controlled(&mut circuit, &controls, target, &op, &pool)
            .expect("multi-controlled emission succeeds for valid specs");
    }
    circuit
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random mixed circuits compile under `Verify::Exhaustive` on every
    /// simulation backend and fixed thread count, with bit-identical
    /// outputs across the whole grid and a verified verdict everywhere.
    #[test]
    fn options_round_trip_on_random_mixed_circuits(
        d in 3u32..=4,
        specs in prop::collection::vec((1usize..=2, 0usize..4, 0u8..3, 0u32..8, 0u32..8), 1..3),
        schedule in any::<bool>(),
    ) {
        let dimension = Dimension::new(d).unwrap();
        let circuit = build_mct_circuit(dimension, &specs);
        let mut reference: Option<Circuit> = None;
        for backend in [SimBackend::Dense, SimBackend::Sparse, SimBackend::Auto] {
            for threads in [Threads::Fixed(1), Threads::Fixed(4)] {
                let compiler = CompileOptions::new()
                    .verify(Verify::Exhaustive)
                    .backend(backend)
                    .schedule(schedule)
                    .cache(CacheMode::PerRun)
                    .threads(threads)
                    .compiler();
                let result = compiler.compile(&circuit).unwrap();
                prop_assert!(result.verification.is_verified());
                prop_assert!(result.circuit.gates().iter().all(Gate::is_g_gate));
                prop_assert_eq!(
                    result.depth,
                    qudit_core::depth::circuit_depth(&result.circuit)
                );
                match &reference {
                    Some(expected) => prop_assert_eq!(
                        &result.circuit, expected,
                        "backend {} / {:?} diverged", backend, threads
                    ),
                    None => reference = Some(result.circuit),
                }
            }
        }
    }

    /// Re-compiling compiled output is monotone for the full flow (fusion
    /// runs *before* lowering, so a re-compile may legitimately fuse runs
    /// inside freshly re-lowered gadget interiors — but never grow the
    /// circuit), and a strict fixpoint once the fusion stage is disabled:
    /// compiling is idempotent on already-compiled circuits at every opt
    /// level for the fusion-free flow.
    #[test]
    fn compilation_is_idempotent_per_opt_level(
        d in 3u32..=4,
        specs in prop::collection::vec((1usize..=2, 0usize..4, 0u8..3, 0u32..8, 0u32..8), 1..2),
        level in prop::sample::select(vec![OptLevel::O0, OptLevel::O1, OptLevel::O2]),
    ) {
        let dimension = Dimension::new(d).unwrap();
        let circuit = build_mct_circuit(dimension, &specs);

        let compiler = CompileOptions::new().opt_level(level).compiler();
        let once = compiler.compile(&circuit).unwrap().circuit;
        let twice = compiler.compile(&once).unwrap().circuit;
        prop_assert!(twice.len() <= once.len(), "re-compile grew the circuit");

        let fixed = CompileOptions::new()
            .opt_level(level)
            .fusion(false)
            .compiler();
        let once = fixed.compile(&circuit).unwrap().circuit;
        let twice = fixed.compile(&once).unwrap().circuit;
        prop_assert_eq!(once, twice);
    }
}
