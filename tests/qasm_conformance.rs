//! Conformance suite over the checked-in `corpus/` of dialect sources.
//!
//! * `corpus/valid/*.qasm` must parse, survive an exact `print → parse`
//!   round trip, print canonically (idempotently), and — when the program
//!   is classical — compile and verify through the standard `O1` facade
//!   flow.
//! * `corpus/invalid/*.qasm` must fail to parse, and the full
//!   `ParseError` rendering (line/column span plus message) must match the
//!   sibling `.expected` golden byte-for-byte.
//!
//! Regenerate goldens after an intentional diagnostic change with
//! `QUDIT_BLESS=1 cargo test --test qasm_conformance`.

use std::fs;
use std::path::{Path, PathBuf};

use qudit_core::qasm::{parse_source, print_circuit};
use qudit_synthesis::{CompileOptions, OptLevel, Verify};

fn corpus_dir(kind: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("corpus")
        .join(kind)
}

fn corpus_sources(kind: &str) -> Vec<(PathBuf, String)> {
    let dir = corpus_dir(kind);
    let mut entries: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|entry| entry.unwrap().path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "qasm"))
        .collect();
    entries.sort();
    assert!(
        !entries.is_empty(),
        "no .qasm files under {} — corpus missing?",
        dir.display()
    );
    entries
        .into_iter()
        .map(|path| {
            let text = fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
            (path, text)
        })
        .collect()
}

#[test]
fn valid_corpus_parses_and_round_trips() {
    for (path, source) in corpus_sources("valid") {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let circuit =
            parse_source(&source).unwrap_or_else(|e| panic!("{name}: expected to parse, got: {e}"));
        let printed = print_circuit(&circuit);
        let reparsed = parse_source(&printed)
            .unwrap_or_else(|e| panic!("{name}: printed form failed to reparse: {e}\n{printed}"));
        assert_eq!(reparsed, circuit, "{name}: round trip diverged\n{printed}");
        assert_eq!(
            print_circuit(&reparsed),
            printed,
            "{name}: printing is not canonical"
        );
    }
}

#[test]
fn valid_classical_corpus_compiles_and_verifies() {
    let mut compiled = 0usize;
    for (path, source) in corpus_sources("valid") {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let circuit = parse_source(&source).unwrap();
        // The facade's lowering stages only accept classical programs;
        // Fourier/phase/unitary sources are covered by the simulation-level
        // equivalence suites instead.
        if !circuit.is_classical() || circuit.gates().is_empty() {
            continue;
        }
        let compiler = CompileOptions::new()
            .opt_level(OptLevel::O1)
            .verify(Verify::Exhaustive)
            .compiler();
        let result = compiler
            .compile_source(&source)
            .unwrap_or_else(|e| panic!("{name}: failed to compile: {e}"));
        assert!(result.verification.is_verified(), "{name}: not verified");
        assert_eq!(
            parse_source(&result.to_qasm()).unwrap(),
            result.circuit,
            "{name}: exported compile output failed to reparse"
        );
        compiled += 1;
    }
    assert!(
        compiled >= 3,
        "expected at least 3 classical corpus programs"
    );
}

#[test]
fn invalid_corpus_errors_match_goldens() {
    let bless = std::env::var_os("QUDIT_BLESS").is_some();
    for (path, source) in corpus_sources("invalid") {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let error = match parse_source(&source) {
            Err(e) => format!("{e}\n"),
            Ok(_) => panic!("{name}: expected a parse error, but the source parsed"),
        };
        let golden_path = path.with_extension("expected");
        if bless {
            fs::write(&golden_path, &error).unwrap();
            continue;
        }
        let golden = fs::read_to_string(&golden_path).unwrap_or_else(|e| {
            panic!(
                "{name}: missing golden {} ({e}); run with QUDIT_BLESS=1 to create it",
                golden_path.display()
            )
        });
        assert_eq!(
            error, golden,
            "{name}: diagnostic drifted from golden (QUDIT_BLESS=1 regenerates)"
        );
    }
}
