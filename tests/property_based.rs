//! Property-based tests (proptest) over the core data structures and the
//! synthesis invariants.

use proptest::prelude::*;
use proptest::strategy::ValueTree;
use qudit_core::lowering::lower_circuit;
use qudit_core::{
    Circuit, Control, ControlPredicate, Dimension, Gate, Permutation, QuditId, SingleQuditOp,
};
use qudit_sim::basis::{all_basis_states, digits_to_index, index_to_digits};
use qudit_sim::circuit_permutation;
use qudit_sim::equivalence::{verify_mct_sampled, MctSpec};
use qudit_synthesis::KToffoli;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a dimension between 3 and 7.
fn dimension_strategy() -> impl Strategy<Value = Dimension> {
    (3u32..=7).prop_map(|d| Dimension::new(d).unwrap())
}

/// Strategy: a random permutation table of the given length.
fn permutation_strategy(len: usize) -> impl Strategy<Value = Vec<u32>> {
    Just((0..len as u32).collect::<Vec<u32>>()).prop_shuffle()
}

/// Strategy: a random classical circuit over `width` qudits of dimension `d`
/// with up to `max_gates` singly-controlled gates.
fn classical_circuit_strategy(
    dimension: Dimension,
    width: usize,
    max_gates: usize,
) -> impl Strategy<Value = Circuit> {
    let d = dimension.get();
    let gate = (
        0..width,
        0..width,
        0u32..d,
        0u32..d,
        1u32..d,
        prop::sample::select(vec![0u8, 1, 2, 3]),
    )
        .prop_filter_map("distinct qudits", move |(t, c, i, j, y, kind)| {
            if t == c {
                return None;
            }
            let op = match kind {
                0 => {
                    if i == j {
                        return None;
                    }
                    SingleQuditOp::Swap(i, j)
                }
                1 => SingleQuditOp::Add(y),
                2 => {
                    if dimension.is_even() {
                        SingleQuditOp::ParityFlipEven
                    } else {
                        SingleQuditOp::ParityFlipOdd
                    }
                }
                _ => SingleQuditOp::Swap(0, (y).max(1)),
            };
            let predicate = match kind {
                0 => ControlPredicate::Level(i),
                1 => ControlPredicate::Odd,
                2 => ControlPredicate::EvenNonzero,
                _ => ControlPredicate::NonZero,
            };
            Some(Gate::controlled(
                op,
                QuditId::new(t),
                vec![Control::new(QuditId::new(c), predicate)],
            ))
        });
    prop::collection::vec(gate, 0..max_gates).prop_map(move |gates| {
        let mut circuit = Circuit::new(dimension, width);
        for gate in gates {
            circuit
                .push(gate)
                .expect("strategy only builds valid gates");
        }
        circuit
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Permutations compose with their inverses to the identity.
    #[test]
    fn permutation_inverse_roundtrip(table in permutation_strategy(6)) {
        let p = Permutation::from_map(table).unwrap();
        prop_assert!(p.compose(&p.inverse()).is_identity());
        prop_assert!(p.inverse().compose(&p).is_identity());
    }

    /// The transposition decomposition of a permutation rebuilds it.
    #[test]
    fn transposition_decomposition_rebuilds(table in permutation_strategy(7)) {
        let d = Dimension::new(7).unwrap();
        let p = Permutation::from_map(table).unwrap();
        let mut rebuilt = Permutation::identity(d);
        for (i, j) in p.transpositions() {
            rebuilt = Permutation::transposition(d, i, j).compose(&rebuilt);
        }
        prop_assert_eq!(rebuilt, p);
    }

    /// Mixed-radix indexing round-trips.
    #[test]
    fn basis_indexing_roundtrip(d in 2u32..=6, width in 1usize..=4, seed in 0usize..10_000) {
        let dimension = Dimension::new(d).unwrap();
        let size = dimension.register_size(width);
        let index = seed % size;
        let digits = index_to_digits(index, dimension, width);
        prop_assert_eq!(digits_to_index(&digits, dimension), index);
    }

    /// A random classical circuit composed with its inverse is the identity
    /// on every basis state.
    #[test]
    fn circuit_inverse_is_identity(
        dimension in dimension_strategy(),
        seed in any::<u64>(),
    ) {
        let circuit = {
            let mut runner = proptest::test_runner::TestRunner::new_with_rng(
                ProptestConfig::default(),
                proptest::test_runner::TestRng::from_seed(
                    proptest::test_runner::RngAlgorithm::ChaCha,
                    &seed.to_le_bytes().repeat(4)[..32],
                ),
            );
            classical_circuit_strategy(dimension, 3, 12)
                .new_tree(&mut runner)
                .unwrap()
                .current()
        };
        let mut combined = circuit.clone();
        combined.append(&circuit.inverse()).unwrap();
        for state in all_basis_states(dimension, 3) {
            prop_assert_eq!(combined.apply_to_basis(&state).unwrap(), state);
        }
    }

    /// Lowering a singly-controlled circuit to G-gates preserves its action.
    #[test]
    fn core_lowering_preserves_semantics(
        dimension in dimension_strategy(),
        seed in any::<u64>(),
    ) {
        let circuit = {
            let mut runner = proptest::test_runner::TestRunner::new_with_rng(
                ProptestConfig::default(),
                proptest::test_runner::TestRng::from_seed(
                    proptest::test_runner::RngAlgorithm::ChaCha,
                    &seed.to_le_bytes().repeat(4)[..32],
                ),
            );
            classical_circuit_strategy(dimension, 2, 8)
                .new_tree(&mut runner)
                .unwrap()
                .current()
        };
        let lowered = lower_circuit(&circuit).unwrap();
        prop_assert!(lowered.gates().iter().all(Gate::is_g_gate));
        prop_assert_eq!(
            circuit_permutation(&circuit).unwrap(),
            circuit_permutation(&lowered).unwrap()
        );
    }

    /// The synthesised k-Toffoli satisfies its specification on random
    /// inputs for arbitrary (d, k) pairs.
    #[test]
    fn toffoli_specification_holds_for_random_parameters(
        d in 3u32..=6,
        k in 1usize..=9,
        seed in any::<u64>(),
    ) {
        let dimension = Dimension::new(d).unwrap();
        let synthesis = KToffoli::new(dimension, k).unwrap().synthesize().unwrap();
        let spec = MctSpec::toffoli(synthesis.layout().controls.clone(), synthesis.layout().target);
        let mut rng = StdRng::seed_from_u64(seed);
        let verdict = verify_mct_sampled(synthesis.circuit(), &spec, 40, &mut rng).unwrap();
        prop_assert!(verdict.is_pass(), "{verdict:?}");
    }

    /// Ancilla policy invariant: odd dimensions are ancilla-free, even
    /// dimensions use exactly one borrowed ancilla (for k ≥ 2).
    #[test]
    fn ancilla_policy_matches_the_theorems(d in 3u32..=8, k in 2usize..=10) {
        let dimension = Dimension::new(d).unwrap();
        let synthesis = KToffoli::new(dimension, k).unwrap().synthesize().unwrap();
        let borrowed = synthesis.resources().borrowed_ancillas();
        if dimension.is_odd() {
            prop_assert_eq!(borrowed, 0);
        } else {
            prop_assert_eq!(borrowed, 1);
        }
        prop_assert_eq!(synthesis.resources().clean_ancillas(), 0);
    }
}
