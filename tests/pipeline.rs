//! Integration tests of the compilation pipeline:
//!
//! * property-based: for random multi-controlled circuits, every stage of
//!   the standard flow (the default `CompileOptions`) preserves semantics
//!   (checked both by the `Verify::Exhaustive` wrappers *inside* the
//!   pipeline and by an outside permutation-table comparison), and the
//!   final circuit consists purely of G-gates;
//! * regression: the pipeline's G-gate counts equal the pre-refactor manual
//!   `lower_to_g_gates` / `cancel_inverse_pairs` chains on the paper's
//!   benchmark cases.

use proptest::prelude::*;
use qudit_core::{Circuit, Dimension, Gate, QuditId, SingleQuditOp};
use qudit_sim::circuit_permutation;
use qudit_synthesis::{emit_multi_controlled, CompileOptions, KToffoli, OptLevel, Verify};

/// Builds a circuit of `specs.len()` multi-controlled gates over `width`
/// qudits, with one spare qudit reserved as the borrowed pool for even `d`.
///
/// Each spec `(k, target_offset, op_kind, shift, level_seed)` places a gate
/// with `k` controls at pseudo-random levels.
fn build_mct_circuit(dimension: Dimension, specs: &[(usize, usize, u8, u32, u32)]) -> Circuit {
    let d = dimension.get();
    // The strategy always generates at least one spec.
    let max_controls = specs
        .iter()
        .map(|s| s.0)
        .max()
        .expect("specs are non-empty");
    // controls + target + one spare for the even-d borrowed ancilla.
    let width = max_controls + 2;
    let mut circuit = Circuit::new(dimension, width);
    for &(k, target_offset, op_kind, shift, level_seed) in specs {
        let op = match op_kind % 3 {
            0 => SingleQuditOp::Swap(0, 1 + shift % (d - 1)),
            1 => SingleQuditOp::Add(1 + shift % (d - 1)),
            _ => SingleQuditOp::Swap(shift % d, (shift + 1) % d),
        };
        // Controls on qudits 0..k, target on one of the remaining qudits.
        let target = QuditId::new(k + (target_offset % (width - k)));
        let controls: Vec<(QuditId, u32)> = (0..k)
            .map(|i| (QuditId::new(i), (level_seed.wrapping_add(i as u32 * 7)) % d))
            .collect();
        let pool: Vec<QuditId> = (0..width)
            .map(QuditId::new)
            .filter(|q| *q != target && !controls.iter().any(|(c, _)| c == q))
            .collect();
        // The pool always holds a spare qudit (width = max k + 2), so
        // emission cannot fail; a failure here is a real regression.
        emit_multi_controlled(&mut circuit, &controls, target, &op, &pool)
            .expect("multi-controlled emission succeeds for valid specs");
    }
    circuit
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every stage of the standard pipeline preserves the circuit's action on
    /// the computational basis, and the result is all G-gates.  The pipeline
    /// is run with `VerifyEquivalence` around every stage, so a stage that
    /// changed semantics would fail the run itself; the output permutation is
    /// additionally compared against the input from the outside.
    #[test]
    fn standard_pipeline_stages_preserve_semantics(
        d in 3u32..=5,
        specs in prop::collection::vec((1usize..=3, 0usize..4, 0u8..3, 0u32..8, 0u32..8), 1..3),
    ) {
        let dimension = Dimension::new(d).unwrap();
        let circuit = build_mct_circuit(dimension, &specs);
        let compiler = CompileOptions::new()
            .verify(Verify::Exhaustive)
            .shape(dimension, circuit.width())
            .compiler();
        let report = compiler.compile(&circuit).unwrap();
        prop_assert!(report.verification.is_verified());
        prop_assert!(report.circuit.gates().iter().all(Gate::is_g_gate));
        prop_assert_eq!(
            circuit_permutation(&circuit).unwrap(),
            circuit_permutation(&report.circuit).unwrap()
        );
        // One verified stats entry per stage, in flow order.
        let names: Vec<&str> = report.stats.iter().map(|s| s.pass.as_str()).collect();
        prop_assert_eq!(names, vec![
            "verify(gate-fusion)",
            "verify(lower-to-elementary)",
            "verify(lower-to-g-gates)",
            "verify(cancel-inverse-pairs)",
        ]);
    }

    /// The lowering pipeline agrees with the synthesis resource report for
    /// random k-Toffolis.
    #[test]
    fn lowering_pipeline_matches_resources(d in 3u32..=5, k in 1usize..=6) {
        let dimension = Dimension::new(d).unwrap();
        let synthesis = KToffoli::new(dimension, k).unwrap().synthesize().unwrap();
        let report = CompileOptions::new()
            .opt_level(OptLevel::O0)
            .shape(dimension, synthesis.layout().width)
            .compiler()
            .compile(synthesis.circuit())
            .unwrap();
        prop_assert_eq!(report.circuit.len(), synthesis.resources().g_gates);
        prop_assert_eq!(report.stats[0].after.gates, synthesis.resources().elementary_gates);
    }
}

/// The paper's benchmark cases: pipeline G-gate counts must be identical to
/// the pre-refactor manual chains (`lower_to_g_gates`, then
/// `cancel_inverse_pairs`).
#[test]
fn pipeline_g_gate_counts_match_the_manual_chains() {
    let benchmark_cases = [
        (3u32, 2usize),
        (3, 4),
        (3, 8),
        (3, 16),
        (4, 2),
        (4, 4),
        (4, 8),
        (5, 3),
        (5, 6),
    ];
    for (d, k) in benchmark_cases {
        let dimension = Dimension::new(d).unwrap();
        let synthesis = KToffoli::new(dimension, k).unwrap().synthesize().unwrap();
        let width = synthesis.layout().width;
        let macro_circuit = synthesis.circuit().clone();

        // Pre-refactor manual chain.
        let manual_g = qudit_synthesis::lower::lower_to_g_gates(&macro_circuit).unwrap();
        let manual_optimized = qudit_core::optimize::cancel_inverse_pairs(&manual_g);

        // Facade equivalents.
        let lowered = CompileOptions::new()
            .opt_level(OptLevel::O0)
            .shape(dimension, width)
            .compiler()
            .compile(&macro_circuit)
            .unwrap()
            .circuit;
        let standard = CompileOptions::new()
            .shape(dimension, width)
            .compiler()
            .compile(&macro_circuit)
            .unwrap();

        assert_eq!(
            lowered.len(),
            manual_g.len(),
            "lowering count (d={d}, k={k})"
        );
        assert_eq!(lowered, manual_g, "lowered circuit (d={d}, k={k})");
        assert_eq!(
            standard.circuit.len(),
            manual_optimized.len(),
            "optimised count (d={d}, k={k})"
        );
        assert_eq!(
            standard.circuit, manual_optimized,
            "optimised circuit (d={d}, k={k})"
        );
        // The resource report (now pipeline-backed) agrees as well.
        assert_eq!(
            synthesis.resources().g_gates,
            manual_g.len(),
            "resources (d={d}, k={k})"
        );
    }
}

/// The pipeline statistics chain consistently: each stage's input profile is
/// the previous stage's output profile, and the gate counts match the
/// returned circuit.
#[test]
fn pipeline_statistics_are_consistent() {
    let dimension = Dimension::new(3).unwrap();
    let synthesis = KToffoli::new(dimension, 5).unwrap().synthesize().unwrap();
    let report = synthesis.compile().unwrap();
    assert_eq!(report.stats.len(), 4);
    for window in report.stats.windows(2) {
        assert_eq!(window[0].after, window[1].before);
    }
    assert_eq!(
        report.stats.first().unwrap().before.gates,
        synthesis.circuit().len()
    );
    assert_eq!(
        report.stats.last().unwrap().after.gates,
        report.circuit.len()
    );
    // Cancellation only removes gates.
    let cancel = report.stats_for("cancel-inverse-pairs").unwrap();
    assert!(cancel.gate_delta() <= 0);
}

/// `VerifyEquivalence` rejects a pipeline stage that breaks semantics, even
/// when embedded in an otherwise-correct pipeline.
#[test]
fn verified_pipeline_catches_a_broken_stage() {
    use qudit_core::pipeline::{pass_fn, PassManager};
    use qudit_sim::pipeline::VerifyEquivalence;

    let dimension = Dimension::new(3).unwrap();
    let synthesis = KToffoli::new(dimension, 2).unwrap().synthesize().unwrap();

    // A "cancellation" that also deletes a real gate.
    let broken = pass_fn("broken-cancel", |c: Circuit| {
        let mut out = Circuit::new(c.dimension(), c.width());
        for gate in c.gates().iter().skip(1) {
            out.push(gate.clone())?;
        }
        Ok(out)
    });
    let manager = VerifyEquivalence::wrap_manager(PassManager::new().with_pass(broken));
    let result = manager.run(synthesis.circuit().clone());
    assert!(matches!(
        result,
        Err(qudit_core::QuditError::PassFailed { .. })
    ));
}
