//! Differential test harness for the stabilizer verification backend.
//!
//! Random all-Clifford circuits over prime dimensions must agree with the
//! Dense and Sparse state-vector engines on final states (up to the
//! stabilizer representation's arbitrary global phase), on basis-state
//! probabilities, and on `VerifyEquivalence` verdicts — across worker pools
//! of 1 and 4 threads.  Non-Clifford gates must be rejected with the typed
//! `QuditError::NonClifford`, and the `Auto` backend must fall back to the
//! state-vector paths with an unchanged verdict on the E10 circuit family.

use proptest::prelude::*;
use qudit_core::math::{Complex, SquareMatrix};
use qudit_core::pipeline::{pass_fn, PassManager};
use qudit_core::pool::WorkStealingPool;
use qudit_core::{Circuit, Control, Dimension, Gate, QuditError, QuditId, SingleQuditOp};
use qudit_sim::basis::index_to_digits;
use qudit_sim::random::{random_clifford_circuit, random_single_qudit_unitary};
use qudit_sim::stabilizer::clifford_circuits_equal_on;
use qudit_sim::{
    classify_gate, clifford_circuits_equal, is_clifford_circuit, SimBackend, SimState, StateVector,
    VerifyEquivalence,
};
use qudit_synthesis::KToffoli;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dim(d: u32) -> Dimension {
    Dimension::new(d).unwrap()
}

/// Width cap per dimension keeping `d^width` small enough for the dense
/// reference (`2^10 = 1024`, `3^7 = 2187`, `5^5 = 3125`).
fn width_cap(d: u32) -> usize {
    match d {
        2 => 10,
        3 => 7,
        _ => 5,
    }
}

/// The qudit Fourier matrix — the canonical non-classical Clifford gate.
fn fourier(d: u32) -> SquareMatrix {
    let omega = 2.0 * std::f64::consts::PI / f64::from(d);
    let s = 1.0 / f64::from(d).sqrt();
    let mut entries = Vec::new();
    for r in 0..d {
        for c in 0..d {
            entries.push(Complex::from_phase(omega * f64::from(r * c)).scale(s));
        }
    }
    SquareMatrix::from_rows(d as usize, entries).unwrap()
}

/// Simulates `circuit` on a basis input through the given backend and
/// returns the final state vector.
fn final_state(circuit: &Circuit, input: &[u32], backend: SimBackend) -> StateVector {
    let mut state = SimState::from_basis(circuit.dimension(), input, backend).unwrap();
    state.apply_circuit(circuit).unwrap();
    state.into_statevector()
}

/// Runs `VerifyEquivalence` around a gate-dropping pass and reports whether
/// the verdict was "equivalent", on an explicit backend and pool width.
fn drop_last_verdict(circuit: &Circuit, backend: SimBackend, threads: usize) -> bool {
    let drop_last = pass_fn("drop-last", |c: Circuit| {
        let mut out = Circuit::new(c.dimension(), c.width());
        for gate in c.gates().iter().take(c.len().saturating_sub(1)) {
            out.push(gate.clone())?;
        }
        Ok(out)
    });
    let manager = PassManager::new()
        .with_pool(WorkStealingPool::with_threads(threads))
        .with_pass(VerifyEquivalence::wrap(Box::new(drop_last)).with_backend(backend));
    match manager.run(circuit.clone()) {
        Ok(_) => true,
        Err(QuditError::PassFailed { .. }) => false,
        Err(other) => panic!("unexpected error: {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Final states of random Clifford circuits agree between the
    /// stabilizer engine and the Dense/Sparse engines on every overlapping
    /// width, up to global phase, and probabilities are thread-invariant.
    #[test]
    fn stabilizer_matches_dense_and_sparse_on_final_states(
        d in prop::sample::select(vec![2u32, 3, 5]),
        width_seed in 0usize..1000,
        seed in any::<u64>(),
    ) {
        let width = 1 + width_seed % width_cap(d);
        let dimension = dim(d);
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = random_clifford_circuit(dimension, width, 24, &mut rng);
        let size = dimension.register_size(width);
        let input = index_to_digits(seed as usize % size, dimension, width);

        let dense = final_state(&circuit, &input, SimBackend::Dense);
        let sparse = final_state(&circuit, &input, SimBackend::Sparse);
        prop_assert!(dense.fidelity(&sparse) > 1.0 - 1e-9);

        // The stabilizer state carries an arbitrary global phase, so the
        // state comparison is by fidelity; probabilities are phase-free and
        // must match the dense reference everywhere, exactly across thread
        // counts (the tableau arithmetic is integer-only).
        let mut probs_per_pool = Vec::new();
        for threads in [1usize, 4] {
            let pool = WorkStealingPool::with_threads(threads);
            let mut state =
                SimState::from_basis(dimension, &input, SimBackend::Stabilizer).unwrap();
            state.apply_circuit_on(&circuit, Some(&pool)).unwrap();
            let probs: Vec<f64> = (0..size)
                .map(|i| state.probability(&index_to_digits(i, dimension, width)))
                .collect();
            for (i, &p) in probs.iter().enumerate() {
                let reference = dense
                    .probability(&index_to_digits(i, dimension, width));
                prop_assert!(
                    (p - reference).abs() < 1e-9,
                    "threads={threads} state {i}: stabilizer {p} vs dense {reference}"
                );
            }
            let sv = state.into_statevector();
            prop_assert!(sv.fidelity(&dense) > 1.0 - 1e-9);
            probs_per_pool.push(probs);
        }
        prop_assert_eq!(&probs_per_pool[0], &probs_per_pool[1]);
    }

    /// `VerifyEquivalence` returns the same verdict on every backend and
    /// pool width for random Clifford circuits.
    #[test]
    fn verify_equivalence_verdicts_agree_across_backends(
        d in prop::sample::select(vec![2u32, 3, 5]),
        width_seed in 0usize..1000,
        seed in any::<u64>(),
    ) {
        let width = 1 + width_seed % width_cap(d);
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = random_clifford_circuit(dim(d), width, 12, &mut rng);

        // The identity pass passes everywhere.
        for backend in [
            SimBackend::Auto,
            SimBackend::Dense,
            SimBackend::Sparse,
            SimBackend::Stabilizer,
        ] {
            let identity = pass_fn("identity", Ok);
            let manager = PassManager::new()
                .with_pass(VerifyEquivalence::wrap(Box::new(identity)).with_backend(backend));
            prop_assert!(manager.run(circuit.clone()).is_ok(), "backend {backend}");
        }

        // Dropping the last gate may or may not preserve the operator (the
        // gate could be an identity permutation) — but the verdict must not
        // depend on the backend or the pool width.
        let reference = drop_last_verdict(&circuit, SimBackend::Dense, 1);
        for backend in [SimBackend::Auto, SimBackend::Sparse, SimBackend::Stabilizer] {
            for threads in [1usize, 4] {
                prop_assert_eq!(
                    drop_last_verdict(&circuit, backend, threads),
                    reference,
                    "backend {} threads {}", backend, threads
                );
            }
        }
    }
}

#[test]
fn non_clifford_repertoire_is_rejected_with_typed_errors() {
    let assert_non_clifford = |gate: Gate, dimension: Dimension, label: &str| {
        match classify_gate(&gate, dimension) {
            Err(QuditError::NonClifford { .. }) => {}
            other => panic!("{label}: expected NonClifford, got {other:?}"),
        }
        // The forced-stabilizer engine surfaces the same typed error
        // instead of panicking.
        let mut circuit = Circuit::new(dimension, 3);
        circuit
            .push(Gate::single(
                SingleQuditOp::Unitary(fourier(dimension.get())),
                QuditId::new(0),
            ))
            .unwrap();
        circuit.push(gate).unwrap();
        let mut state = SimState::from_basis(dimension, &[0; 3], SimBackend::Stabilizer).unwrap();
        match state.apply_circuit(&circuit) {
            Err(QuditError::NonClifford { .. }) => {}
            other => panic!("{label}: engine should reject, got {other:?}"),
        }
        assert!(!is_clifford_circuit(&circuit), "{label}");
    };

    // Level-controlled gates are block-diagonal with unequal blocks.
    assert_non_clifford(
        Gate::controlled(
            SingleQuditOp::Add(1),
            QuditId::new(1),
            vec![Control::level(QuditId::new(0), 1)],
        ),
        dim(3),
        "controlled add",
    );
    // Three-qudit support exceeds the classifier's arity.
    assert_non_clifford(
        Gate::add_from(
            QuditId::new(0),
            false,
            QuditId::new(1),
            vec![Control::level(QuditId::new(2), 1)],
        ),
        dim(3),
        "controlled SUM",
    );
    // A level transposition is not affine for d = 5.
    assert_non_clifford(
        Gate::single(SingleQuditOp::Swap(0, 1), QuditId::new(0)),
        dim(5),
        "transposition at d=5",
    );
    // A Haar-random unitary is (overwhelmingly, and for this seed:
    // verifiably) not a Clifford.
    let mut rng = StdRng::seed_from_u64(3);
    assert_non_clifford(
        Gate::single(
            SingleQuditOp::Unitary(random_single_qudit_unitary(dim(3), &mut rng)),
            QuditId::new(0),
        ),
        dim(3),
        "haar unitary",
    );
    // Composite dimensions have no stabilizer formalism at all.
    match classify_gate(
        &Gate::single(SingleQuditOp::Add(1), QuditId::new(0)),
        dim(4),
    ) {
        Err(QuditError::NonClifford { .. }) => {}
        other => panic!("composite dimension: expected NonClifford, got {other:?}"),
    }
}

#[test]
fn auto_falls_back_on_the_e10_family_with_unchanged_verdicts() {
    // The E10 sweep circuits (synthesised k-Toffolis) contain level-controlled
    // gates, so they are not Clifford: Auto must route them to the
    // state-vector engines and every backend must return the same verdict.
    for (d, k) in [(3u32, 2usize), (4, 2), (5, 2), (3, 3)] {
        let synthesis = KToffoli::new(dim(d), k).unwrap().synthesize().unwrap();
        let circuit = synthesis.circuit();
        assert!(!is_clifford_circuit(circuit), "d={d} k={k}");
        let resolved = SimBackend::Auto.resolve(circuit);
        assert!(
            matches!(resolved, SimBackend::Dense | SimBackend::Sparse),
            "d={d} k={k}: Auto must fall back, got {resolved}"
        );
        for backend in [
            SimBackend::Auto,
            SimBackend::Dense,
            SimBackend::Sparse,
            SimBackend::Stabilizer,
        ] {
            // Faithful pass: accepted.
            let identity = pass_fn("identity", Ok);
            let manager = PassManager::new()
                .with_pass(VerifyEquivalence::wrap(Box::new(identity)).with_backend(backend));
            assert!(
                manager.run(circuit.clone()).is_ok(),
                "d={d} k={k} backend {backend}"
            );
            // Gate-dropping pass: rejected (a k-Toffoli is never a no-op).
            let drop_all = pass_fn("drop-all", |c: Circuit| {
                Ok(Circuit::new(c.dimension(), c.width()))
            });
            let manager = PassManager::new()
                .with_pass(VerifyEquivalence::wrap(Box::new(drop_all)).with_backend(backend));
            assert!(
                matches!(
                    manager.run(circuit.clone()),
                    Err(QuditError::PassFailed { .. })
                ),
                "d={d} k={k} backend {backend}"
            );
        }
    }
}

#[test]
fn stabilizer_verifies_random_clifford_circuits_at_width_24() {
    // 3^24 ≈ 2.8·10¹¹ basis states: beyond every state-vector strategy.
    let dimension = dim(3);
    let width = 24;
    let mut rng = StdRng::seed_from_u64(17);
    let mut circuit = random_clifford_circuit(dimension, width, 96, &mut rng);
    // Pin a Fourier gate so the circuit is certainly non-classical and the
    // tableau branch (not the classical permutation sweep) is exercised.
    circuit
        .push(Gate::single(
            SingleQuditOp::Unitary(fourier(3)),
            QuditId::new(0),
        ))
        .unwrap();
    assert!(is_clifford_circuit(&circuit));
    assert_eq!(SimBackend::Auto.resolve(&circuit), SimBackend::Stabilizer);

    // Exact self-equivalence, on 1 and 4 worker threads.
    for threads in [1usize, 4] {
        let pool = WorkStealingPool::with_threads(threads);
        assert!(clifford_circuits_equal_on(&circuit, &circuit.clone(), Some(&pool)).unwrap());
    }
    // Tampering is detected.
    let mut tampered = circuit.clone();
    tampered
        .push(Gate::single(SingleQuditOp::Add(1), QuditId::new(5)))
        .unwrap();
    assert!(!clifford_circuits_equal(&circuit, &tampered).unwrap());

    // The same verdicts through the `VerifyEquivalence` pass.
    for backend in [SimBackend::Auto, SimBackend::Stabilizer] {
        for threads in [1usize, 4] {
            let identity = pass_fn("identity", Ok);
            let manager = PassManager::new()
                .with_pool(WorkStealingPool::with_threads(threads))
                .with_pass(VerifyEquivalence::wrap(Box::new(identity)).with_backend(backend));
            assert!(manager.run(circuit.clone()).is_ok());

            let drop_all = pass_fn("drop-all", |c: Circuit| {
                Ok(Circuit::new(c.dimension(), c.width()))
            });
            let manager = PassManager::new()
                .with_pool(WorkStealingPool::with_threads(threads))
                .with_pass(VerifyEquivalence::wrap(Box::new(drop_all)).with_backend(backend));
            match manager.run(circuit.clone()) {
                Err(QuditError::PassFailed { reason, .. }) => {
                    assert!(reason.contains("stabilizer"), "{reason}");
                }
                other => panic!("expected PassFailed, got {other:?}"),
            }
        }
    }

    // Probability queries stay cheap at width 24.
    let mut state =
        SimState::from_basis(dimension, &vec![0u32; width], SimBackend::Stabilizer).unwrap();
    state.apply_circuit(&circuit).unwrap();
    let dominant = state.dominant_basis_state();
    assert!(state.probability(&dominant) > 0.0);
}

#[test]
fn classical_prefix_with_clifford_suffix_promotes_at_width_24() {
    // The resolution crossover at scale: a circuit opening with classical
    // gates and closing with non-classical Clifford gates must pick the
    // stabilizer engine rather than densifying at the first unitary.
    let dimension = dim(3);
    let width = 24;
    let mut circuit = Circuit::new(dimension, width);
    for q in 0..width - 1 {
        circuit
            .push(Gate::add_from(
                QuditId::new(q),
                false,
                QuditId::new(q + 1),
                vec![],
            ))
            .unwrap();
    }
    circuit
        .push(Gate::single(
            SingleQuditOp::Unitary(fourier(3)),
            QuditId::new(width - 1),
        ))
        .unwrap();
    assert_eq!(SimBackend::Auto.resolve(&circuit), SimBackend::Stabilizer);

    let mut state =
        SimState::from_basis(dimension, &vec![1u32; width], SimBackend::Stabilizer).unwrap();
    state.apply_circuit(&circuit).unwrap();
    assert!(state.is_stabilizer());
    let dominant = state.dominant_basis_state();
    assert!(state.probability(&dominant) > 0.0);
}
