//! Cross-crate integration tests for the application-level results:
//! reversible-function compilation (Theorem IV.2) and unitary synthesis
//! (Theorem IV.1).

use qudit_core::Dimension;
use qudit_reversible::{lower_bound, ReversibleFunction, ReversibleSynthesizer};
use qudit_sim::basis::all_basis_states;
use qudit_sim::random::random_unitary;
use qudit_sim::statevector::circuit_unitary;
use qudit_unitary::{recompose, two_level_decompose, UnitarySynthesizer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dim(d: u32) -> Dimension {
    Dimension::new(d).unwrap()
}

#[test]
fn random_reversible_functions_compile_and_verify() {
    let mut rng = StdRng::seed_from_u64(1234);
    for (d, n) in [(3u32, 2usize), (3, 3), (4, 2), (4, 3), (5, 2)] {
        let dimension = dim(d);
        let function = ReversibleFunction::random(dimension, n, &mut rng);
        let synthesis = ReversibleSynthesizer::new(dimension)
            .unwrap()
            .synthesize(&function)
            .unwrap();
        for state in all_basis_states(dimension, n) {
            let mut padded = state.clone();
            padded.resize(synthesis.layout().width, 0);
            let output = synthesis.circuit().apply_to_basis(&padded).unwrap();
            assert_eq!(
                &output[..n],
                function.apply(&state).unwrap().as_slice(),
                "d={d}, n={n}"
            );
        }
        // Ancilla policy matches the theorem.
        let expected_ancillas = usize::from(dimension.is_even() && n >= 3);
        assert_eq!(synthesis.resources().total_ancillas(), expected_ancillas);
    }
}

#[test]
fn composed_functions_compile_to_composed_circuits() {
    let dimension = dim(3);
    let mut rng = StdRng::seed_from_u64(55);
    let f = ReversibleFunction::random(dimension, 2, &mut rng);
    let g = ReversibleFunction::random(dimension, 2, &mut rng);
    let fg = f.compose(&g);
    let synthesizer = ReversibleSynthesizer::new(dimension).unwrap();
    let circuit_g = synthesizer.synthesize(&g).unwrap();
    let circuit_f = synthesizer.synthesize(&f).unwrap();
    let circuit_fg = synthesizer.synthesize(&fg).unwrap();
    for state in all_basis_states(dimension, 2) {
        let via_sequence = {
            let mid = circuit_g.circuit().apply_to_basis(&state).unwrap();
            circuit_f.circuit().apply_to_basis(&mid).unwrap()
        };
        let direct = circuit_fg.circuit().apply_to_basis(&state).unwrap();
        assert_eq!(via_sequence, direct);
    }
}

#[test]
fn measured_gate_counts_exceed_the_lower_bound() {
    let mut rng = StdRng::seed_from_u64(77);
    for (d, n) in [(3u32, 2usize), (3, 3)] {
        let dimension = dim(d);
        let function = ReversibleFunction::random(dimension, n, &mut rng);
        let synthesis = ReversibleSynthesizer::new(dimension)
            .unwrap()
            .synthesize(&function)
            .unwrap();
        let bound = lower_bound::g_gate_lower_bound(dimension, n, 2);
        // The bound is a worst-case statement; a random function is close to
        // worst case, so the measured count should comfortably exceed it.
        assert!(
            (synthesis.resources().g_gates as f64) > bound / 4.0,
            "d={d}, n={n}: measured {} vs bound {bound}",
            synthesis.resources().g_gates
        );
    }
}

#[test]
fn two_level_decomposition_round_trips_random_unitaries() {
    let mut rng = StdRng::seed_from_u64(2);
    for size in [3usize, 9, 12] {
        let u = random_unitary(size, &mut rng);
        let factors = two_level_decompose(&u).unwrap();
        let rebuilt = recompose(&factors, size);
        assert!(rebuilt.approx_eq(&u, 1e-7), "size {size}");
    }
}

#[test]
fn unitary_synthesis_reproduces_two_qutrit_unitaries() {
    let dimension = dim(3);
    let mut rng = StdRng::seed_from_u64(8);
    let u = random_unitary(9, &mut rng);
    let synthesis = UnitarySynthesizer::new(dimension)
        .unwrap()
        .synthesize(&u, 2)
        .unwrap();
    let built = circuit_unitary(synthesis.circuit()).unwrap();
    // The register has an idle third qudit: compare block-diagonally.
    for r in 0..9 {
        for c in 0..9 {
            for anc in 0..3 {
                let entry = built[(r * 3 + anc, c * 3 + anc)];
                assert!(
                    entry.approx_eq(u[(r, c)], 1e-7),
                    "entry ({r},{c}) ancilla {anc}: {entry} vs {}",
                    u[(r, c)]
                );
            }
        }
    }
}

#[test]
fn unitary_synthesis_of_permutation_matrices_matches_reversible_compiler() {
    // A classical permutation can be synthesised either as a unitary
    // (Theorem IV.1) or as a reversible function (Theorem IV.2); both must
    // implement the same map on the variable qudits.
    let dimension = dim(3);
    let mut rng = StdRng::seed_from_u64(31);
    let function = ReversibleFunction::random(dimension, 2, &mut rng);
    let map: Vec<usize> = function.table().to_vec();
    let matrix = qudit_core::math::SquareMatrix::from_permutation(&map).unwrap();

    let unitary_route = UnitarySynthesizer::new(dimension)
        .unwrap()
        .synthesize(&matrix, 2)
        .unwrap();
    let reversible_route = ReversibleSynthesizer::new(dimension)
        .unwrap()
        .synthesize(&function)
        .unwrap();

    for state in all_basis_states(dimension, 2) {
        let expected = function.apply(&state).unwrap();
        let mut padded = state.clone();
        padded.resize(unitary_route.layout().width, 0);
        let via_unitary = unitary_route.circuit().apply_to_basis(&padded);
        // The unitary route may introduce non-classical gates in general; for
        // permutation inputs the Givens factors are real swaps, so the
        // circuit stays classical and the comparison is exact.
        if let Ok(output) = via_unitary {
            assert_eq!(&output[..2], expected.as_slice());
        }
        let via_reversible = reversible_route.circuit().apply_to_basis(&state).unwrap();
        assert_eq!(&via_reversible[..2], expected.as_slice());
    }
}

#[test]
fn experiment_smoke_quick_report_contains_every_section() {
    use qudit_bench::experiments::{full_report, Scale};
    let report = full_report(Scale::Quick);
    for heading in [
        "E1",
        "E2",
        "E3",
        "E3a",
        "E4",
        "E5",
        "E6",
        "E7",
        "E8",
        "E9",
        "E10",
        "E11",
        "Figure verification",
    ] {
        assert!(
            report.contains(heading),
            "report is missing section {heading}"
        );
    }
}
