//! Integration suite for the connectivity-routing subsystem
//! (`qudit_core::topology` + `qudit_core::route`):
//!
//! * routed circuit + inverse-permutation epilogue ≡ original, checked by
//!   `VerifyEquivalence` across `SimBackend::{Dense, Sparse, Auto}` ×
//!   pool widths 1 and 4 (and, at the facade level, across
//!   `Threads::{Fixed(1), Fixed(4)}`);
//! * every routed circuit passes the adjacency validator, and the
//!   validator rejects hand-built violating circuits with typed errors;
//! * routing is idempotent on already-routed circuits (the fast path
//!   returns them untouched with zero swaps).

use std::sync::Arc;

use proptest::prelude::*;
use qudit_core::pipeline::PassManager;
use qudit_core::pool::WorkStealingPool;
use qudit_core::route::{
    route_circuit, validate_adjacency, NoiseAwareCost, RoutePass, Router, UniformCost,
};
use qudit_core::topology::CouplingGraph;
use qudit_core::{Circuit, Control, Dimension, Gate, QuditError, QuditId, SingleQuditOp};
use qudit_sim::{SimBackend, VerifyEquivalence};
use qudit_synthesis::{CompileOptions, Threads, Verify};

fn dim(d: u32) -> Dimension {
    Dimension::new(d).unwrap()
}

/// One of the three stock topologies, always with `sites >= width`.
fn graph_for(width: usize, pick: u8) -> CouplingGraph {
    match pick % 3 {
        0 => CouplingGraph::linear(width).unwrap(),
        1 => CouplingGraph::ring(width.max(3)).unwrap(),
        _ => CouplingGraph::grid(2, width.div_ceil(2)).unwrap(),
    }
}

/// Builds a classical circuit of one- and two-qudit gates from generated
/// specs — arity ≤ 2 by construction, so the circuit is routable without
/// any lowering.
fn build_circuit(dimension: Dimension, width: usize, specs: &[(u8, u8, u8, u8)]) -> Circuit {
    let d = dimension.get();
    let mut circuit = Circuit::new(dimension, width);
    for &(kind, a, b, level) in specs {
        let a = a as usize % width;
        let b = b as usize % width;
        let target = QuditId::new(a);
        let other = QuditId::new(if a == b { (a + 1) % width } else { b });
        let gate = match kind % 6 {
            0 => Gate::single(SingleQuditOp::Add(1 + level as u32 % (d - 1)), target),
            1 => Gate::single(
                SingleQuditOp::Swap(level as u32 % d, (level as u32 + 1) % d),
                target,
            ),
            2 if width >= 2 => Gate::controlled(
                SingleQuditOp::Add(1 + level as u32 % (d - 1)),
                target,
                vec![Control::level(other, level as u32 % d)],
            ),
            3 if width >= 2 => Gate::add_from(other, level % 2 == 0, target, vec![]),
            4 if width >= 2 => Gate::controlled(
                SingleQuditOp::Swap(0, 1 + level as u32 % (d - 1)),
                target,
                vec![Control::nonzero(other)],
            ),
            _ => Gate::single(
                SingleQuditOp::Perm(
                    qudit_core::Permutation::from_map((0..d).map(|l| (l + 1) % d).collect())
                        .unwrap(),
                ),
                target,
            ),
        };
        circuit.push(gate).unwrap();
    }
    circuit
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The routed circuit plus its inverse-permutation epilogue is
    /// equivalent to the original: `VerifyEquivalence` accepts the
    /// `"route"` stage on every backend and pool width, and the stage's
    /// output honours the coupling graph.
    #[test]
    fn routed_circuits_verify_on_every_backend_and_pool_width(
        d in prop::sample::select(vec![2u32, 3]),
        width in 3usize..=4,
        pick in 0u8..3,
        specs in prop::collection::vec((0u8..6, 0u8..8, 0u8..8, 0u8..8), 1..10),
    ) {
        let dimension = dim(d);
        let graph = graph_for(width, pick);
        // `VerifyEquivalence` requires width-stable passes, so embed the
        // circuit in the physical register first (exactly what the
        // compiler facade does before its pipeline).
        let circuit = build_circuit(dimension, width, &specs)
            .widened(graph.sites())
            .unwrap();
        for backend in [SimBackend::Dense, SimBackend::Sparse, SimBackend::Auto] {
            for threads in [1usize, 4] {
                let stage = RoutePass::new(graph.clone(), Arc::new(UniformCost));
                let manager = PassManager::new()
                    .with_pool(WorkStealingPool::with_threads(threads))
                    .with_pass(VerifyEquivalence::wrap(Box::new(stage)).with_backend(backend));
                let routed = manager.run(circuit.clone()).unwrap_or_else(|e| {
                    panic!("routing rejected on backend {backend} with {threads} threads: {e}")
                });
                prop_assert!(validate_adjacency(&routed.circuit, &graph).is_ok());
            }
        }
    }

    /// Routing an already-routed circuit is a no-op: the router's fast
    /// path reports zero swaps and returns the circuit untouched.
    #[test]
    fn routing_is_idempotent_on_routed_circuits(
        d in prop::sample::select(vec![2u32, 3]),
        width in 3usize..=4,
        pick in 0u8..3,
        specs in prop::collection::vec((0u8..6, 0u8..8, 0u8..8, 0u8..8), 1..10),
    ) {
        let dimension = dim(d);
        let graph = graph_for(width, pick);
        let circuit = build_circuit(dimension, width, &specs);
        let routed = route_circuit(&circuit, &graph, &NoiseAwareCost::default())
            .unwrap()
            .with_epilogue(&graph)
            .unwrap();
        let again = route_circuit(&routed, &graph, &NoiseAwareCost::default()).unwrap();
        prop_assert!(again.is_trivial(), "second route must take the fast path");
        prop_assert_eq!(again.swap_count, 0usize);
        prop_assert_eq!(&again.circuit, &routed);
    }
}

/// The adjacency validator rejects hand-built violations with typed
/// errors naming the offence, and the router refuses un-lowered gates.
#[test]
fn validator_rejects_hand_built_violations() {
    let dimension = dim(3);
    let graph = CouplingGraph::linear(3).unwrap();

    // A two-qudit gate across the chain's non-edge (0, 2).
    let mut uncoupled = Circuit::new(dimension, 3);
    uncoupled
        .push(Gate::add_from(
            QuditId::new(0),
            false,
            QuditId::new(2),
            vec![],
        ))
        .unwrap();
    match validate_adjacency(&uncoupled, &graph) {
        Err(QuditError::UncoupledGate { a: 0, b: 2, .. }) => {}
        other => panic!("expected UncoupledGate {{0, 2}}, got {other:?}"),
    }
    // The router repairs exactly that violation.
    let routed = route_circuit(&uncoupled, &graph, &UniformCost).unwrap();
    assert!(
        routed.swap_count > 0,
        "the non-edge forces at least one SWAP"
    );
    assert!(validate_adjacency(&routed.circuit, &graph).is_ok());

    // A three-qudit gate must be lowered before routing.
    let mut wide = Circuit::new(dimension, 3);
    wide.push(Gate::controlled(
        SingleQuditOp::Add(1),
        QuditId::new(2),
        vec![
            Control::nonzero(QuditId::new(0)),
            Control::nonzero(QuditId::new(1)),
        ],
    ))
    .unwrap();
    assert!(matches!(
        validate_adjacency(&wide, &graph),
        Err(QuditError::UnsupportedLowering { .. })
    ));
    assert!(matches!(
        Router::new(&graph, &UniformCost).route(&wide),
        Err(QuditError::UnsupportedLowering { .. })
    ));

    // A circuit wider than the graph is a typed size error.
    let narrow_graph = CouplingGraph::linear(2).unwrap();
    assert!(matches!(
        validate_adjacency(&uncoupled, &narrow_graph),
        Err(QuditError::TopologyTooSmall { sites: 2, .. })
    ));
}

/// Facade-level refinement of the equivalence property: a routed, fully
/// verified compile succeeds on every backend × `Threads::{Fixed(1),
/// Fixed(4)}`, and the compiled circuit honours the graph.
#[test]
fn routed_compiles_verify_across_backends_and_thread_counts() {
    let dimension = dim(3);
    let graph = CouplingGraph::linear(4).unwrap();
    let mut circuit = Circuit::new(dimension, 4);
    circuit
        .push(Gate::controlled(
            SingleQuditOp::Add(1),
            QuditId::new(3),
            vec![Control::level(QuditId::new(0), 2)],
        ))
        .unwrap();
    circuit
        .push(Gate::add_from(
            QuditId::new(1),
            false,
            QuditId::new(3),
            vec![],
        ))
        .unwrap();
    circuit
        .push(Gate::single(SingleQuditOp::Swap(0, 2), QuditId::new(2)))
        .unwrap();
    for backend in [SimBackend::Dense, SimBackend::Sparse, SimBackend::Auto] {
        for threads in [Threads::Fixed(1), Threads::Fixed(4)] {
            let result = CompileOptions::new()
                .topology(graph.clone())
                .cost(NoiseAwareCost::default())
                .verify(Verify::Exhaustive)
                .backend(backend)
                .threads(threads)
                .compiler()
                .compile(&circuit)
                .unwrap_or_else(|e| panic!("backend {backend} / {threads:?}: {e}"));
            assert!(result.verification.is_verified());
            assert!(validate_adjacency(&result.circuit, &graph).is_ok());
            assert!(result.swap_count.is_some());
            assert!(result.weighted_cost.unwrap_or(0.0) > 0.0);
        }
    }
}
