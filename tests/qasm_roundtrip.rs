//! Round-trip property suites for the text IR (`qudit_core::qasm`):
//!
//! * `parse ∘ print = id` *structurally* on random circuits drawn from the
//!   full dialect repertoire (swaps, shifts, parity flips, permutations,
//!   Fourier/phase Cliffords, Haar-like unitaries, `SUM`, up to two
//!   controls of every predicate kind) over dimensions {2, 3, 5};
//! * `compile_source(print(c)) ≡ compile(c)` — gate-for-gate after the
//!   standard `O1` flow, with identical `VerifyEquivalence` verdicts —
//!   across `SimBackend::{Dense, Sparse, Auto}` × `Threads::{Fixed(1),
//!   Fixed(4)}` (the CI matrix additionally runs the whole suite under
//!   `QUDIT_THREADS=1` and `=4`);
//! * the same equivalence on all-Clifford workloads through the
//!   `Stabilizer` backend.

use proptest::prelude::*;
use qudit_core::pipeline::{pass_fn, PassManager};
use qudit_core::pool::WorkStealingPool;
use qudit_core::qasm::{parse_source, print_circuit};
use qudit_core::{Circuit, Dimension};
use qudit_sim::random::{
    random_classical_dialect_circuit, random_clifford_circuit, random_dialect_circuit,
};
use qudit_sim::{SimBackend, VerifyEquivalence};
use qudit_synthesis::{CompileOptions, OptLevel, Threads, Verify};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dim(d: u32) -> Dimension {
    Dimension::new(d).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The printer is an exact structural inverse of the parser over the
    /// full repertoire, unitary matrix entries included bit-for-bit.
    #[test]
    fn parse_print_identity_on_full_repertoire(
        seed in any::<u64>(),
        d in prop::sample::select(vec![2u32, 3, 5]),
        width in 1usize..5,
        gates in 0usize..24,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = random_dialect_circuit(dim(d), width, gates, &mut rng);
        let printed = print_circuit(&circuit);
        let reparsed = parse_source(&printed)
            .unwrap_or_else(|e| panic!("printed circuit failed to reparse: {e}\n{printed}"));
        prop_assert_eq!(reparsed, circuit, "printed:\n{}", printed);
    }

    /// Printing is deterministic and idempotent: printing the reparsed
    /// circuit reproduces the text byte-for-byte.
    #[test]
    fn printing_is_canonical(
        seed in any::<u64>(),
        d in prop::sample::select(vec![2u32, 3, 5]),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = random_dialect_circuit(dim(d), 3, 12, &mut rng);
        let printed = print_circuit(&circuit);
        let reprinted = print_circuit(&parse_source(&printed).unwrap());
        prop_assert_eq!(printed, reprinted);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A text job and its native-circuit twin behave identically through
    /// the whole `O1` pass stack — same compiled gates, depth and verified
    /// verdict when compilation succeeds, the *same typed error* when it
    /// does not (some random circuits legitimately need ancilla wires the
    /// register lacks) — on every backend and fixed pool width.
    #[test]
    fn compile_source_matches_native_compile(
        seed in any::<u64>(),
        d in prop::sample::select(vec![2u32, 3, 5]),
        gates in 1usize..10,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = random_classical_dialect_circuit(dim(d), 4, gates, &mut rng);
        let printed = print_circuit(&circuit);
        for backend in [SimBackend::Dense, SimBackend::Sparse, SimBackend::Auto] {
            for threads in [Threads::Fixed(1), Threads::Fixed(4)] {
                let compiler = CompileOptions::new()
                    .opt_level(OptLevel::O1)
                    .verify(Verify::Exhaustive)
                    .backend(backend)
                    .threads(threads)
                    .compiler();
                let native = compiler.compile(&circuit);
                let text = compiler.compile_source(&printed);
                match (native, text) {
                    (Ok(native), Ok(text)) => {
                        prop_assert_eq!(
                            &text.circuit, &native.circuit,
                            "backend {} / {:?} diverged", backend, threads
                        );
                        prop_assert_eq!(text.depth, native.depth);
                        prop_assert_eq!(text.verification, native.verification);
                        prop_assert!(text.verification.is_verified());
                        // The exporter closes the loop: compiled output
                        // reparses to the compiled circuit.
                        prop_assert_eq!(
                            parse_source(&text.to_qasm()).unwrap(),
                            text.circuit
                        );
                    }
                    (Err(native), Err(text)) => prop_assert_eq!(
                        text, native,
                        "backend {} / {:?}: errors diverged", backend, threads
                    ),
                    (native, text) => prop_assert!(
                        false,
                        "backend {} / {:?}: one path failed, the other did not \
                         (native: {:?}, text: {:?})",
                        backend, threads, native.is_ok(), text.is_ok()
                    ),
                }
            }
        }
    }

    /// The refinement check of the round trip itself: `VerifyEquivalence`
    /// — on both the `Auto` and `Stabilizer` backends, across pool widths
    /// 1 and 4 — accepts `c → parse(print(c))` as an equivalence-preserving
    /// "pass" on random all-Clifford circuits.
    #[test]
    fn clifford_round_trip_verifies_on_the_stabilizer_backend(
        seed in any::<u64>(),
        d in prop::sample::select(vec![2u32, 3, 5]),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = random_clifford_circuit(dim(d), 3, 12, &mut rng);
        prop_assert_eq!(&parse_source(&print_circuit(&circuit)).unwrap(), &circuit);
        for backend in [SimBackend::Auto, SimBackend::Stabilizer] {
            for threads in [1usize, 4] {
                let round_trip = pass_fn("qasm-round-trip", |c: Circuit| {
                    let printed = print_circuit(&c);
                    parse_source(&printed).map_err(qudit_core::QuditError::from)
                });
                let manager = PassManager::new()
                    .with_pool(WorkStealingPool::with_threads(threads))
                    .with_pass(
                        VerifyEquivalence::wrap(Box::new(round_trip)).with_backend(backend),
                    );
                prop_assert!(
                    manager.run(circuit.clone()).is_ok(),
                    "round trip rejected on backend {} with {} threads", backend, threads
                );
            }
        }
    }
}

/// `parse(print(parse(s)))` keeps a user-chosen register name: the printer
/// no longer canonicalises every register to `q`.
#[test]
fn register_names_survive_print_parse_round_trips() {
    let source = "OPENQASM 3.0;\n\
                  qudit[3] anc[2];\n\
                  ctrl @ shift(1) anc[0], anc[1];\n";
    let parsed = parse_source(source).unwrap();
    assert_eq!(parsed.register_name(), Some("anc"));
    let printed = print_circuit(&parsed);
    assert!(printed.contains("qudit[3] anc[2];"), "printed:\n{printed}");
    assert!(printed.contains("anc[0], anc[1]"), "printed:\n{printed}");
    let reparsed = parse_source(&printed).unwrap();
    assert_eq!(reparsed.register_name(), Some("anc"));
    assert_eq!(reparsed, parsed);
    // Programmatic circuits still print as the canonical register `q`.
    let mut anonymous = Circuit::new(dim(3), 1);
    anonymous
        .push(qudit_core::Gate::single(
            qudit_core::SingleQuditOp::Add(1),
            qudit_core::QuditId::new(0),
        ))
        .unwrap();
    assert!(print_circuit(&anonymous).contains("qudit[3] q[1];"));
}

/// A deterministic smoke of the whole loop at fixed seeds, so a plain
/// `cargo test qasm` exercises the property even if the proptest shim's
/// case count is trimmed via environment.
#[test]
fn fixed_seed_round_trip_smoke() {
    for (seed, d) in [(1u64, 2u32), (2, 3), (3, 5)] {
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = random_dialect_circuit(dim(d), 4, 20, &mut rng);
        let printed = print_circuit(&circuit);
        assert_eq!(parse_source(&printed).unwrap(), circuit, "d={d}");
    }
}

/// A deterministic compile-equivalence case that must take the `Ok` path
/// (single controls only, a spare wire available), so the property above
/// cannot silently degenerate into comparing errors.
#[test]
fn fixed_source_compiles_identically_to_its_circuit() {
    let source = "OPENQASM 3.0;\n\
                  qudit[3] q[3];\n\
                  ctrl(1) @ swap(0, 2) q[0], q[1];\n\
                  shift(2) q[2];\n\
                  ctrl(odd) @ sum q[2], q[0], q[1];\n\
                  perm(2, 0, 1) q[0];\n";
    let circuit = parse_source(source).unwrap();
    for backend in [SimBackend::Dense, SimBackend::Sparse, SimBackend::Auto] {
        for threads in [Threads::Fixed(1), Threads::Fixed(4)] {
            let compiler = CompileOptions::new()
                .opt_level(OptLevel::O1)
                .verify(Verify::Exhaustive)
                .backend(backend)
                .threads(threads)
                .compiler();
            let native = compiler.compile(&circuit).unwrap();
            let text = compiler.compile_source(source).unwrap();
            assert_eq!(text.circuit, native.circuit);
            assert!(text.verification.is_verified());
        }
    }
}
