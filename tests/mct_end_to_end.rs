//! Cross-crate integration tests: the multi-controlled gate syntheses of
//! `qudit-synthesis` are verified with the checkers of `qudit-sim` and
//! compared against the baselines of `qudit-baselines`.

use qudit_baselines::{exponential_mct, CleanAncillaMct};
use qudit_core::{Dimension, Gate, QuditId, SingleQuditOp};
use qudit_sim::equivalence::{verify_mct_exhaustive, verify_mct_sampled, MctSpec};
use qudit_sim::{circuit_permutation, PermutationSimulator};
use qudit_synthesis::{ControlledUnitary, KToffoli, MultiControlledGate};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dim(d: u32) -> Dimension {
    Dimension::new(d).unwrap()
}

#[test]
fn toffoli_matches_spec_exhaustively_for_small_parameters() {
    for (d, max_k) in [(3u32, 5usize), (4, 4), (5, 3)] {
        for k in 1..=max_k {
            let synthesis = KToffoli::new(dim(d), k).unwrap().synthesize().unwrap();
            let spec = MctSpec::toffoli(
                synthesis.layout().controls.clone(),
                synthesis.layout().target,
            );
            let verdict = verify_mct_exhaustive(synthesis.circuit(), &spec).unwrap();
            assert!(verdict.is_pass(), "d={d}, k={k}: {verdict:?}");
        }
    }
}

#[test]
fn lowered_toffoli_matches_spec_exhaustively() {
    // The same check after lowering all the way to G-gates.
    for (d, k) in [(3u32, 4usize), (4, 3), (5, 2)] {
        let synthesis = KToffoli::new(dim(d), k).unwrap().synthesize().unwrap();
        let g_circuit = synthesis.g_gate_circuit().unwrap();
        assert!(g_circuit.gates().iter().all(Gate::is_g_gate));
        let spec = MctSpec::toffoli(
            synthesis.layout().controls.clone(),
            synthesis.layout().target,
        );
        let verdict = verify_mct_exhaustive(&g_circuit, &spec).unwrap();
        assert!(verdict.is_pass(), "d={d}, k={k}: {verdict:?}");
    }
}

#[test]
fn large_toffoli_matches_spec_on_random_inputs() {
    let mut rng = StdRng::seed_from_u64(99);
    for (d, k) in [(3u32, 10usize), (3, 16), (4, 10), (5, 8)] {
        let synthesis = KToffoli::new(dim(d), k).unwrap().synthesize().unwrap();
        let spec = MctSpec::toffoli(
            synthesis.layout().controls.clone(),
            synthesis.layout().target,
        );
        let verdict = verify_mct_sampled(synthesis.circuit(), &spec, 200, &mut rng).unwrap();
        assert!(verdict.is_pass(), "d={d}, k={k}: {verdict:?}");
    }
}

#[test]
fn ours_and_clean_ancilla_baseline_agree_on_the_toffoli_action() {
    // Both syntheses implement |0^k⟩-X01; compare their action on the
    // controls+target sub-register by checking each against the same spec.
    let d = dim(3);
    let k = 3;
    let ours = KToffoli::new(d, k).unwrap().synthesize().unwrap();
    let baseline = CleanAncillaMct::new(d, k, SingleQuditOp::Swap(0, 1))
        .unwrap()
        .synthesize()
        .unwrap();
    let spec_ours = MctSpec::toffoli(ours.layout().controls.clone(), ours.layout().target);
    let spec_baseline =
        MctSpec::toffoli(baseline.layout().controls.clone(), baseline.layout().target);
    assert!(verify_mct_exhaustive(ours.circuit(), &spec_ours)
        .unwrap()
        .is_pass());
    // The baseline only honours the clean-ancilla contract.
    let verdict = qudit_sim::equivalence::verify_mct_with_clean_ancilla(
        baseline.circuit(),
        &spec_baseline,
        baseline.layout().clean_ancillas[0],
    );
    // With more than one ancilla the helper only fixes one of them, so fall
    // back to a manual check over the all-zero-ancilla subspace.
    drop(verdict);
    let width = baseline.layout().width;
    let dimension = baseline.circuit().dimension();
    for index in 0..dimension.register_size(width) {
        let digits = qudit_sim::basis::index_to_digits(index, dimension, width);
        if baseline
            .layout()
            .clean_ancillas
            .iter()
            .any(|a| digits[a.index()] != 0)
        {
            continue;
        }
        let expected = spec_baseline.expected_output(&digits, dimension).unwrap();
        let actual = baseline.circuit().apply_to_basis(&digits).unwrap();
        assert_eq!(actual, expected);
    }
}

#[test]
fn ours_and_exponential_baseline_compute_the_same_permutation() {
    // For odd d both constructions are ancilla-free on k+1 qudits, so their
    // permutation tables must be identical.
    let d = dim(3);
    let k = 3;
    let ours = KToffoli::new(d, k).unwrap().synthesize().unwrap();
    let exponential = exponential_mct(d, k, 0, 1).unwrap();
    let ours_table = circuit_permutation(ours.circuit()).unwrap();
    let exp_table = circuit_permutation(&exponential).unwrap();
    assert_eq!(ours_table, exp_table);
    // And ours uses far fewer gates once k grows.
    let ours_big = KToffoli::new(d, 8).unwrap().synthesize().unwrap();
    let exp_big_count = qudit_baselines::exponential_gate_count(d, 8);
    assert!((ours_big.resources().g_gates as u128) < exp_big_count);
}

#[test]
fn multi_controlled_adds_and_swaps_compose_correctly() {
    // Build |0^2⟩-X+1 followed by its inverse; the composition must be the
    // identity permutation.
    let d = dim(5);
    let add = MultiControlledGate::new(d, 2, SingleQuditOp::Add(1))
        .unwrap()
        .synthesize()
        .unwrap();
    let sub = MultiControlledGate::new(d, 2, SingleQuditOp::Add(4))
        .unwrap()
        .synthesize()
        .unwrap();
    let mut combined = add.circuit().clone();
    combined.append(sub.circuit()).unwrap();
    let table = circuit_permutation(&combined).unwrap();
    assert!(table.iter().enumerate().all(|(i, &to)| i == to));
}

#[test]
fn controlled_unitary_full_pipeline_with_simulator() {
    let d = dim(3);
    let synthesis = ControlledUnitary::new(d, 2, SingleQuditOp::Swap(1, 2))
        .unwrap()
        .synthesize()
        .unwrap();
    let mut sim = PermutationSimulator::from_state(d, &[0, 0, 1, 0]).unwrap();
    sim.run(synthesis.circuit()).unwrap();
    // Controls are |0,0⟩ so the target swaps 1 ↔ 2 and the ancilla returns to 0.
    assert_eq!(sim.state(), &[0, 0, 2, 0]);
    let mut idle = PermutationSimulator::from_state(d, &[1, 0, 1, 0]).unwrap();
    idle.run(synthesis.circuit()).unwrap();
    assert_eq!(idle.state(), &[1, 0, 1, 0]);
}

#[test]
fn even_dimension_toffoli_keeps_the_borrowed_ancilla_intact() {
    let d = dim(4);
    let synthesis = KToffoli::new(d, 3).unwrap().synthesize().unwrap();
    let ancilla = synthesis
        .layout()
        .borrowed_ancilla
        .expect("even d uses a borrowed ancilla");
    let dimension = synthesis.circuit().dimension();
    for index in 0..dimension.register_size(synthesis.layout().width) {
        let digits = qudit_sim::basis::index_to_digits(index, dimension, synthesis.layout().width);
        let output = synthesis.circuit().apply_to_basis(&digits).unwrap();
        assert_eq!(
            output[ancilla.index()],
            digits[ancilla.index()],
            "borrowed ancilla must be restored for every initial state"
        );
    }
}

#[test]
fn resources_are_consistent_across_lowering_levels() {
    for (d, k) in [(3u32, 6usize), (4, 5)] {
        let synthesis = KToffoli::new(dim(d), k).unwrap().synthesize().unwrap();
        let r = synthesis.resources();
        assert_eq!(r.macro_gates, synthesis.circuit().len());
        assert_eq!(
            r.elementary_gates,
            synthesis.elementary_circuit().unwrap().len()
        );
        assert_eq!(r.g_gates, synthesis.g_gate_circuit().unwrap().len());
        assert!(r.g_gates >= r.elementary_gates);
        assert!(r.elementary_gates >= r.macro_gates);
    }
}

#[test]
fn g_gate_counts_scale_linearly_not_quadratically() {
    // For a linear count g(k) = a·k + b, the increment g(2k) − g(k) doubles
    // when k doubles; for a quadratic count it would quadruple.  Check that
    // the increment ratio stays close to 2.
    for d in [3u32, 4] {
        let g = |k: usize| {
            KToffoli::new(dim(d), k)
                .unwrap()
                .synthesize()
                .unwrap()
                .resources()
                .g_gates as f64
        };
        let (g8, g16, g32) = (g(8), g(16), g(32));
        let increment_ratio = (g32 - g16) / (g16 - g8);
        assert!(
            increment_ratio < 2.5,
            "d={d}: increments {} and {} (ratio {increment_ratio}) suggest super-linear growth",
            g16 - g8,
            g32 - g16
        );
        // Sanity: the counts do grow with k.
        assert!(g8 < g16 && g16 < g32);
    }
}

#[test]
fn target_qudit_untouched_when_any_control_is_nonzero() {
    // Directed check of the "no action" branch for a larger register.
    let d = dim(3);
    let synthesis = KToffoli::new(d, 7).unwrap().synthesize().unwrap();
    let width = synthesis.layout().width;
    let mut rng = StdRng::seed_from_u64(4);
    use rand::Rng;
    for _ in 0..100 {
        let mut digits: Vec<u32> = (0..width).map(|_| rng.gen_range(0..3)).collect();
        // Force at least one control non-zero.
        digits[rng.gen_range(0..7)] = rng.gen_range(1..3);
        let output = synthesis.circuit().apply_to_basis(&digits).unwrap();
        assert_eq!(output, digits);
    }
}

#[test]
fn layouts_name_distinct_qudits() {
    for d in [3u32, 4] {
        let synthesis = KToffoli::new(dim(d), 5).unwrap().synthesize().unwrap();
        let layout = synthesis.layout();
        let mut qudits: Vec<QuditId> = layout.controls.clone();
        qudits.push(layout.target);
        if let Some(a) = layout.borrowed_ancilla {
            qudits.push(a);
        }
        let mut sorted = qudits.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), qudits.len());
        assert_eq!(qudits.len(), layout.width);
    }
}
