//! Integration tests of the parallel batch-compilation subsystem, routed
//! through the `Compiler` facade:
//!
//! * sequential (`compile`) and parallel (`compile_batch`) compilation of
//!   the same jobs report identical gate/G-gate counts and identical
//!   circuits;
//! * the shared lowering cache changes nothing about the compiled circuits
//!   while reusing gadget expansions across jobs;
//! * the self-checking (`Verify::Exhaustive`) pipeline still passes when
//!   run batched and cached — every parallel/cached path stays verifiable
//!   by re-simulation.

use qudit_core::cache::LoweringCache;
use qudit_core::pipeline::CacheMode;
use qudit_core::Circuit;
use qudit_synthesis::{CompileOptions, KToffoli, Threads, Verify};

/// The macro circuits of a small heterogeneous sweep (both parities, several
/// widths).
fn sweep_jobs() -> Vec<Circuit> {
    let mut jobs = Vec::new();
    for (d, k) in [(3u32, 2usize), (3, 4), (3, 6), (4, 2), (4, 4), (5, 3)] {
        let synthesis = KToffoli::new(qudit_core::Dimension::new(d).unwrap(), k)
            .unwrap()
            .synthesize()
            .unwrap();
        jobs.push(synthesis.circuit().clone());
    }
    jobs
}

#[test]
fn sequential_and_parallel_compilation_agree() {
    let jobs = sweep_jobs();
    let compiler = CompileOptions::new()
        .cache(CacheMode::PerRun)
        .threads(Threads::Fixed(4))
        .compiler();

    let sequential: Vec<_> = jobs
        .iter()
        .map(|job| compiler.compile(job).unwrap())
        .collect();
    let batch = compiler.compile_batch(&jobs).unwrap();

    for (parallel, reference) in batch.results.iter().zip(&sequential) {
        assert_eq!(parallel.circuit, reference.circuit);
        assert_eq!(parallel.depth, reference.depth);
        assert_eq!(
            parallel.cache, reference.cache,
            "cache tallies must be deterministic"
        );
        for (a, b) in parallel.stats.iter().zip(&reference.stats) {
            assert_eq!(a.pass, b.pass);
            assert_eq!(a.before.gates, b.before.gates, "gate counts must match");
            assert_eq!(a.after.gates, b.after.gates, "gate counts must match");
            assert_eq!(a.after.g_gates, b.after.g_gates, "G-gate counts must match");
            assert_eq!(a.cache, b.cache, "cache tallies must be deterministic");
        }
    }

    // The merged statistics agree with summing the sequential results.
    let merged = batch.merged_stats();
    for (position, entry) in merged.iter().enumerate() {
        let expected_gates: usize = sequential
            .iter()
            .map(|r| r.stats[position].after.gates)
            .sum();
        assert_eq!(entry.gates_after, expected_gates);
    }
    assert!(
        batch.cache_counters().hits > 0,
        "the sweep must hit the cache"
    );
}

#[test]
fn shared_cache_reuses_expansions_across_jobs_without_changing_output() {
    let jobs = sweep_jobs();
    let uncached = CompileOptions::new().compiler();
    let reference: Vec<_> = jobs
        .iter()
        .map(|job| uncached.compile(job).unwrap().circuit)
        .collect();

    let cache = LoweringCache::shared();
    let shared = CompileOptions::new()
        .cache(CacheMode::Shared(cache.clone()))
        .threads(Threads::Fixed(4))
        .compiler();
    let batch = shared.compile_batch(&jobs).unwrap();
    let compiled: Vec<_> = batch.circuits().cloned().collect();
    assert_eq!(compiled, reference);
    let counters = cache.counters();
    assert!(counters.hits > 0);
    assert!(
        counters.hits > counters.misses,
        "most lookups of a sweep should hit the shared cache ({counters:?})"
    );
}

#[test]
fn verified_pipeline_passes_batched_and_cached() {
    let jobs = sweep_jobs();
    let compiler = CompileOptions::new()
        .verify(Verify::Exhaustive)
        .cache(CacheMode::PerRun)
        .threads(Threads::Fixed(2))
        .compiler();
    let batch = compiler.compile_batch(&jobs).unwrap();
    assert!(batch.is_verified());
    for result in &batch.results {
        assert!(result
            .circuit
            .gates()
            .iter()
            .all(qudit_core::Gate::is_g_gate));
        assert!(result.verification.is_verified());
        // Verification wrappers forward the cache context to the wrapped
        // passes, so cache statistics survive under verification.
        assert!(result.stats.iter().all(|s| s.pass.starts_with("verify(")));
        assert!(result.cache.map(|c| c.total() > 0).unwrap_or(false));
    }
}
