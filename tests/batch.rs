//! Integration tests of the parallel batch-compilation subsystem:
//!
//! * sequential and parallel (`run_batch`) compilation of the same jobs
//!   report identical gate/G-gate counts and identical circuits;
//! * the shared lowering cache changes nothing about the compiled circuits
//!   while reusing gadget expansions across jobs;
//! * the self-checking (`VerifyEquivalence`-wrapped) pipeline still passes
//!   when run batched and cached — every parallel/cached path stays
//!   verifiable by re-simulation.

use qudit_core::cache::LoweringCache;
use qudit_core::pipeline::CacheMode;
use qudit_core::pool::WorkStealingPool;
use qudit_core::Circuit;
use qudit_sim::pipeline::VerifyEquivalence;
use qudit_synthesis::{KToffoli, Pipeline};

/// The macro circuits of a small heterogeneous sweep (both parities, several
/// widths).
fn sweep_jobs() -> Vec<Circuit> {
    let mut jobs = Vec::new();
    for (d, k) in [(3u32, 2usize), (3, 4), (3, 6), (4, 2), (4, 4), (5, 3)] {
        let synthesis = KToffoli::new(qudit_core::Dimension::new(d).unwrap(), k)
            .unwrap()
            .synthesize()
            .unwrap();
        jobs.push(synthesis.circuit().clone());
    }
    jobs
}

#[test]
fn sequential_and_parallel_compilation_agree() {
    let jobs = sweep_jobs();
    let manager = Pipeline::standard_batch();

    let sequential: Vec<_> = jobs
        .iter()
        .map(|job| manager.run(job.clone()).unwrap())
        .collect();
    let batch = manager
        .run_batch_on(jobs, &WorkStealingPool::with_threads(4))
        .unwrap();

    for (parallel, reference) in batch.reports.iter().zip(&sequential) {
        assert_eq!(parallel.circuit, reference.circuit);
        for (a, b) in parallel.stats.iter().zip(&reference.stats) {
            assert_eq!(a.pass, b.pass);
            assert_eq!(a.before.gates, b.before.gates, "gate counts must match");
            assert_eq!(a.after.gates, b.after.gates, "gate counts must match");
            assert_eq!(a.after.g_gates, b.after.g_gates, "G-gate counts must match");
            assert_eq!(a.cache, b.cache, "cache tallies must be deterministic");
        }
    }

    // The merged statistics agree with summing the sequential reports.
    let merged = batch.merged_stats();
    for (position, entry) in merged.iter().enumerate() {
        let expected_gates: usize = sequential
            .iter()
            .map(|r| r.stats[position].after.gates)
            .sum();
        assert_eq!(entry.gates_after, expected_gates);
    }
    assert!(
        batch.cache_counters().hits > 0,
        "the sweep must hit the cache"
    );
}

#[test]
fn shared_cache_reuses_expansions_across_jobs_without_changing_output() {
    let jobs = sweep_jobs();
    let uncached = Pipeline::standard_batch().with_cache(CacheMode::Off);
    let reference: Vec<_> = jobs
        .iter()
        .map(|job| uncached.run(job.clone()).unwrap().circuit)
        .collect();

    let cache = LoweringCache::shared();
    let shared = Pipeline::standard_batch().with_cache(CacheMode::Shared(cache.clone()));
    let batch = shared
        .run_batch_on(jobs, &WorkStealingPool::with_threads(4))
        .unwrap();
    let compiled: Vec<_> = batch.circuits().cloned().collect();
    assert_eq!(compiled, reference);
    let counters = cache.counters();
    assert!(counters.hits > 0);
    assert!(
        counters.hits > counters.misses,
        "most lookups of a sweep should hit the shared cache ({counters:?})"
    );
}

#[test]
fn verified_pipeline_passes_batched_and_cached() {
    let jobs = sweep_jobs();
    let manager = VerifyEquivalence::wrap_manager(Pipeline::standard_batch());
    let batch = manager
        .run_batch_on(jobs, &WorkStealingPool::with_threads(2))
        .unwrap();
    for report in &batch.reports {
        assert!(report
            .circuit
            .gates()
            .iter()
            .all(qudit_core::Gate::is_g_gate));
        // Verification wrappers forward the cache context to the wrapped
        // passes, so cache statistics survive under verification.
        assert!(report.stats.iter().all(|s| s.pass.starts_with("verify(")));
        assert!(report
            .stats
            .iter()
            .any(|s| s.cache.map(|c| c.total() > 0).unwrap_or(false)));
    }
}
