//! Property suite for the commutation oracle: every `true` answer is checked
//! against the brute-force `d^w × d^w` matrix commutator on the full
//! register.
//!
//! Soundness is the load-bearing property — the depth scheduler reorders
//! gate pairs exactly when the oracle claims commutation, so a single false
//! `true` would silently corrupt scheduled circuits.  Completeness is
//! intentionally partial (the oracle may answer `false` for commuting
//! pairs); the suite only checks that the oracle is not vacuous.

use proptest::prelude::*;
use qudit_core::commute::gates_commute;
use qudit_core::math::{Complex, SquareMatrix};
use qudit_core::{Circuit, Control, Dimension, Gate, QuditId, SingleQuditOp};
use qudit_sim::circuit_unitary;

/// The full-register unitary of a single gate.
fn gate_unitary(dimension: Dimension, width: usize, gate: &Gate) -> SquareMatrix {
    let mut circuit = Circuit::new(dimension, width);
    circuit.push(gate.clone()).expect("generated gate is valid");
    circuit_unitary(&circuit).expect("single-gate circuit simulates")
}

/// Ground truth: `[A, B] = 0` on the full register, checked with the dense
/// matrix product in both orders.
fn matrices_commute(dimension: Dimension, width: usize, a: &Gate, b: &Gate) -> bool {
    let ua = gate_unitary(dimension, width, a);
    let ub = gate_unitary(dimension, width, b);
    (&ua * &ub).approx_eq(&(&ub * &ua), 1e-9)
}

/// Builds one gate over `width` qudits from a generated spec.
///
/// `op_kind` selects the operation, `target_seed` the target wire,
/// `control_seed` the (possibly empty) control set with mixed predicates,
/// and `level_seed` the operation's levels.
fn build_gate(
    dimension: Dimension,
    width: usize,
    op_kind: u8,
    target_seed: usize,
    control_seed: u32,
    level_seed: u32,
) -> Gate {
    let d = dimension.get();
    let target = QuditId::new(target_seed % width);
    // Up to two controls on wires other than the target, with the predicate
    // kind cycling through level/odd/even-nonzero/nonzero.
    let mut controls = Vec::new();
    let mut taken = vec![target.index()];
    for slot in 0..(control_seed % 3) {
        let wire = (0..width)
            .map(|w| (target.index() + 1 + (control_seed as usize + slot as usize) + w) % width)
            .find(|w| !taken.contains(w));
        let Some(wire) = wire else { break };
        taken.push(wire);
        let predicate_roll = control_seed.wrapping_mul(7).wrapping_add(slot) % 4;
        let q = QuditId::new(wire);
        controls.push(match predicate_roll {
            0 => Control::level(q, level_seed % d),
            1 => Control::odd(q),
            2 => Control::even_nonzero(q),
            _ => Control::nonzero(q),
        });
    }
    match op_kind % 6 {
        0 => Gate::controlled(
            SingleQuditOp::Swap(level_seed % d, (level_seed + 1 + level_seed % (d - 1)) % d),
            target,
            controls,
        ),
        1 => Gate::controlled(
            SingleQuditOp::Add(1 + level_seed % (d - 1)),
            target,
            controls,
        ),
        2 => {
            let op = if dimension.is_odd() {
                SingleQuditOp::ParityFlipOdd
            } else {
                SingleQuditOp::ParityFlipEven
            };
            Gate::controlled(op, target, controls)
        }
        3 => {
            // A value-controlled shift: the source is a free wire when one
            // exists, otherwise fall back to a plain add.
            let source = (0..width).find(|w| !taken.contains(w));
            match source {
                Some(source) => Gate::add_from(
                    QuditId::new(source),
                    level_seed.is_multiple_of(2),
                    target,
                    controls,
                ),
                None => Gate::controlled(SingleQuditOp::Add(1), target, controls),
            }
        }
        4 => Gate::controlled(
            SingleQuditOp::Swap(0, 1 + level_seed % (d - 1)),
            target,
            controls,
        ),
        _ => {
            // A diagonal (non-permutation) unitary: seeded phases on the
            // levels, exercising the diagonal-vs-diagonal oracle rule.
            let mut matrix = SquareMatrix::identity(d as usize);
            for l in 0..d as usize {
                let angle = std::f64::consts::TAU
                    * ((level_seed as usize + l * (1 + level_seed as usize % 3)) % 8) as f64
                    / 8.0;
                matrix[(l, l)] = Complex::new(angle.cos(), angle.sin());
            }
            Gate::controlled(SingleQuditOp::Unitary(matrix), target, controls)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Soundness: whenever the oracle claims `[A, B] = 0`, the full-register
    /// matrices agree.  Swaps in the transposition levels, control
    /// predicates, value-controlled shifts and every dimension parity are
    /// all exercised.
    #[test]
    fn oracle_never_claims_a_refutable_commutation(
        d in 3u32..=4,
        width in 2usize..=3,
        a_op in 0u8..6, a_target in 0usize..3, a_controls in 0u32..12, a_levels in 0u32..12,
        b_op in 0u8..6, b_target in 0usize..3, b_controls in 0u32..12, b_levels in 0u32..12,
    ) {
        let dimension = Dimension::new(d).unwrap();
        let a = build_gate(dimension, width, a_op, a_target, a_controls, a_levels);
        let b = build_gate(dimension, width, b_op, b_target, b_controls, b_levels);
        if gates_commute(dimension, &a, &b) {
            prop_assert!(
                matrices_commute(dimension, width, &a, &b),
                "oracle claimed [A,B]=0 but the matrices refute it:\n  A = {a}\n  B = {b}"
            );
        }
        // The oracle must be symmetric either way.
        prop_assert_eq!(
            gates_commute(dimension, &a, &b),
            gates_commute(dimension, &b, &a),
            "oracle must be symmetric for A = {} and B = {}", a, b
        );
    }

    /// Non-vacuousness: disjoint-support pairs are always claimed, so the
    /// oracle's `true` branch is exercised on every run.  (Their
    /// commutation is a tensor-product identity, so no matrix check is
    /// needed here; the soundness property above covers the overlapping
    /// pairs where refutation is possible.)
    #[test]
    fn oracle_claims_disjoint_pairs(
        d in 3u32..=5,
        a_op in 0u8..6, a_levels in 0u32..12,
        b_op in 0u8..6, b_levels in 0u32..12,
    ) {
        let dimension = Dimension::new(d).unwrap();
        // Gate A confined to wires {0, 1}, gate B to wires {2, 3}.
        let a = build_gate(dimension, 2, a_op, a_levels as usize, a_levels, a_levels);
        let b = build_gate(dimension, 2, b_op, b_levels as usize, b_levels, b_levels)
            .map_qudits(|q| QuditId::new(q.index() + 2));
        prop_assert!(gates_commute(dimension, &a, &b));
    }
}

/// The random sweep must actually exercise the oracle's `true` branch on
/// *overlapping* pairs (the refutable ones): enumerate a deterministic grid
/// and verify every overlapping claim against the matrices, requiring a
/// healthy number of such claims.
#[test]
fn overlapping_claims_exist_and_are_all_sound() {
    let mut overlapping_claims = 0usize;
    for d in [3u32, 4] {
        let dimension = Dimension::new(d).unwrap();
        let width = 3;
        for a_op in 0..6u8 {
            for b_op in 0..6u8 {
                for seed in 0..12u32 {
                    let a = build_gate(dimension, width, a_op, seed as usize, seed, seed);
                    let b = build_gate(
                        dimension,
                        width,
                        b_op,
                        1 + seed as usize,
                        seed / 2,
                        11 - seed,
                    );
                    let shares_a_wire = a.qudits().iter().any(|q| b.qudits().contains(q));
                    if !shares_a_wire || !gates_commute(dimension, &a, &b) {
                        continue;
                    }
                    overlapping_claims += 1;
                    assert!(
                        matrices_commute(dimension, width, &a, &b),
                        "oracle claimed [A,B]=0 but the matrices refute it:\n  A = {a}\n  B = {b}"
                    );
                }
            }
        }
    }
    assert!(
        overlapping_claims >= 20,
        "the grid must exercise the oracle's true branch on overlapping pairs \
         (got {overlapping_claims})"
    );
}

/// Unitary (non-classical) operations route through the `d × d` matrix
/// commutator; check the claim against the full register on a directed case.
#[test]
fn unitary_ops_claims_are_sound_on_the_register() {
    let dimension = Dimension::new(3).unwrap();
    let s = 1.0 / 2.0f64.sqrt();
    let mut h = SquareMatrix::identity(3);
    h[(0, 0)] = Complex::from_real(s);
    h[(0, 1)] = Complex::from_real(s);
    h[(1, 0)] = Complex::from_real(s);
    h[(1, 1)] = Complex::from_real(-s);
    let hadamard_like = Gate::single(SingleQuditOp::Unitary(h), QuditId::new(0));
    // The same unitary on the same wire commutes with itself…
    assert!(gates_commute(dimension, &hadamard_like, &hadamard_like));
    assert!(matrices_commute(
        dimension,
        2,
        &hadamard_like,
        &hadamard_like
    ));
    // …and with anything on a disjoint wire.
    let other = Gate::single(SingleQuditOp::Add(1), QuditId::new(1));
    assert!(gates_commute(dimension, &hadamard_like, &other));
    // A swap touching the mixed levels does not commute, and the oracle
    // must not claim it.
    let clash = Gate::single(SingleQuditOp::Swap(0, 1), QuditId::new(0));
    assert!(!gates_commute(dimension, &hadamard_like, &clash));
    assert!(!matrices_commute(dimension, 2, &hadamard_like, &clash));
}
