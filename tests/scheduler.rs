//! End-to-end suite for the commutation-aware depth scheduler:
//!
//! * property-based: scheduled circuits are equivalent to their inputs on
//!   every simulation backend (`Dense`, `Sparse`, `Auto`), scheduling is
//!   idempotent, never increases depth, and the pool-parallel path matches
//!   the sequential one for 1 and 4 workers (the CI thread matrix
//!   additionally runs this whole suite under `QUDIT_THREADS=1` and `=4`);
//! * regression: on the E10 k-Toffoli family, `ScheduleDepth` never
//!   increases `circuit_depth`, and golden depth values pin a few fixed
//!   `(d, k)` points so future passes cannot silently regress depth;
//! * verification: the fully `VerifyEquivalence`-wrapped scheduled pipeline
//!   accepts every circuit of the E10 sweep — each stage, including the
//!   scheduler, is re-simulated and checked.

use proptest::prelude::*;
use qudit_core::commute::{schedule_depth, schedule_depth_on};
use qudit_core::depth::circuit_depth;
use qudit_core::pool::WorkStealingPool;
use qudit_core::{Circuit, Dimension, Gate, QuditId, SingleQuditOp};
use qudit_sim::circuit_permutation;
use qudit_sim::equivalence::{verify_mct_sampled_with, MctSpec};
use qudit_sim::sparse::{circuit_unitary_with, SimBackend};
use qudit_synthesis::{emit_multi_controlled, CompileOptions, Compiler, KToffoli, Verify};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The standard-flow compiler pinned to one register shape.
fn standard_compiler(dimension: Dimension, width: usize) -> Compiler {
    CompileOptions::new().shape(dimension, width).compiler()
}

/// Builds a circuit of multi-controlled gates over `width` qudits (one
/// spare wire is reserved as the borrowed pool for even `d`) — the same
/// workload family as the pipeline proptests.
fn build_mct_circuit(dimension: Dimension, specs: &[(usize, usize, u8, u32, u32)]) -> Circuit {
    let d = dimension.get();
    let max_controls = specs.iter().map(|s| s.0).max().expect("non-empty specs");
    let width = max_controls + 2;
    let mut circuit = Circuit::new(dimension, width);
    for &(k, target_offset, op_kind, shift, level_seed) in specs {
        let op = match op_kind % 3 {
            0 => SingleQuditOp::Swap(0, 1 + shift % (d - 1)),
            1 => SingleQuditOp::Add(1 + shift % (d - 1)),
            _ => SingleQuditOp::Swap(shift % d, (shift + 1) % d),
        };
        let target = QuditId::new(k + (target_offset % (width - k)));
        let controls: Vec<(QuditId, u32)> = (0..k)
            .map(|i| (QuditId::new(i), (level_seed.wrapping_add(i as u32 * 7)) % d))
            .collect();
        let pool: Vec<QuditId> = (0..width)
            .map(QuditId::new)
            .filter(|q| *q != target && !controls.iter().any(|(c, _)| c == q))
            .collect();
        emit_multi_controlled(&mut circuit, &controls, target, &op, &pool)
            .expect("multi-controlled emission succeeds for valid specs");
    }
    circuit
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Scheduling preserves the circuit's operator on every backend, never
    /// increases the measured depth, is idempotent, and is identical on the
    /// sequential and pool-parallel paths (1 and 4 workers).
    #[test]
    fn scheduling_preserves_semantics_on_every_backend(
        d in 3u32..=4,
        specs in prop::collection::vec((1usize..=2, 0usize..4, 0u8..3, 0u32..8, 0u32..8), 1..3),
    ) {
        let dimension = Dimension::new(d).unwrap();
        let circuit = build_mct_circuit(dimension, &specs);
        // Schedule the fully lowered circuit — the form the pipeline
        // schedules, and the one with reordering freedom.
        let lowered = standard_compiler(dimension, circuit.width())
            .compile(&circuit)
            .unwrap()
            .circuit;
        let scheduled = schedule_depth(&lowered);

        // Same gate multiset, never deeper, and the same permutation.
        prop_assert_eq!(scheduled.len(), lowered.len());
        prop_assert!(circuit_depth(&scheduled) <= circuit_depth(&lowered));
        prop_assert_eq!(
            circuit_permutation(&lowered).unwrap(),
            circuit_permutation(&scheduled).unwrap()
        );
        // Unitary equivalence on every simulation backend.
        for backend in [SimBackend::Dense, SimBackend::Sparse, SimBackend::Auto] {
            let before = circuit_unitary_with(&lowered, backend).unwrap();
            let after = circuit_unitary_with(&scheduled, backend).unwrap();
            prop_assert!(
                before.approx_eq(&after, 1e-12),
                "backend {} disagrees after scheduling", backend
            );
        }
        // Idempotence: a second run changes nothing.
        prop_assert_eq!(schedule_depth(&scheduled), scheduled.clone());
        // Pool-parallel path: identical for both CI worker counts.
        for threads in [1usize, 4] {
            let pool = WorkStealingPool::with_threads(threads);
            prop_assert_eq!(&schedule_depth_on(&lowered, &pool), &scheduled);
        }
    }

    /// The scheduled standard pipeline (the opt-in preset) produces a
    /// circuit equivalent to the unscheduled one, at no more depth.
    #[test]
    fn scheduled_preset_matches_standard_semantics(
        d in 3u32..=4,
        specs in prop::collection::vec((1usize..=2, 0usize..4, 0u8..3, 0u32..8, 0u32..8), 1..2),
    ) {
        let dimension = Dimension::new(d).unwrap();
        let circuit = build_mct_circuit(dimension, &specs);
        let plain = standard_compiler(dimension, circuit.width())
            .compile(&circuit)
            .unwrap()
            .circuit;
        let report = CompileOptions::new()
            .schedule(true)
            .shape(dimension, circuit.width())
            .compiler()
            .compile(&circuit)
            .unwrap();
        prop_assert_eq!(
            circuit_permutation(&plain).unwrap(),
            circuit_permutation(&report.circuit).unwrap()
        );
        let schedule_stats = report.stats.last().unwrap();
        prop_assert_eq!(schedule_stats.pass.as_str(), "schedule-depth");
        prop_assert!(schedule_stats.after.depth <= schedule_stats.before.depth);
        prop_assert_eq!(circuit_depth(&report.circuit), schedule_stats.after.depth);
    }
}

/// Golden depths of the E10 k-Toffoli family: `(d, k, depth before
/// scheduling, depth after scheduling)` of the standard flow's output.
///
/// The "after" values pin the scheduler's achieved depth so a future pass
/// (or an oracle/scheduler change) cannot silently regress it; loosening
/// them is fine when the new value is *smaller*.
const GOLDEN_DEPTHS: &[(u32, usize, usize, usize)] = &[
    (3, 3, 556, 554),
    (3, 4, 1592, 1582),
    (3, 6, 5604, 5402),
    (4, 3, 466, 434),
    (4, 4, 1625, 1513),
    (4, 6, 4600, 4288),
];

#[test]
fn e10_family_depths_match_the_golden_values() {
    for &(d, k, depth_before, depth_after) in GOLDEN_DEPTHS {
        let dimension = Dimension::new(d).unwrap();
        let synthesis = KToffoli::new(dimension, k).unwrap().synthesize().unwrap();
        let width = synthesis.layout().width;
        let plain = standard_compiler(dimension, width)
            .compile(synthesis.circuit())
            .unwrap()
            .circuit;
        assert_eq!(
            circuit_depth(&plain),
            depth_before,
            "unscheduled depth moved for d={d}, k={k}"
        );
        let scheduled = schedule_depth(&plain);
        assert_eq!(
            circuit_depth(&scheduled),
            depth_after,
            "scheduled depth moved for d={d}, k={k}"
        );
        assert!(depth_after <= depth_before);
    }
}

#[test]
fn schedule_never_increases_depth_on_the_e10_family() {
    // The full quick-scale E10 sweep, one assertion per point, plus
    // idempotence of the pass on real workloads.
    for (d, k) in qudit_bench::experiments::e10_sweep(qudit_bench::experiments::Scale::Quick) {
        let dimension = Dimension::new(d).unwrap();
        let synthesis = KToffoli::new(dimension, k).unwrap().synthesize().unwrap();
        let width = synthesis.layout().width;
        let plain = standard_compiler(dimension, width)
            .compile(synthesis.circuit())
            .unwrap()
            .circuit;
        let scheduled = schedule_depth(&plain);
        assert!(
            circuit_depth(&scheduled) <= circuit_depth(&plain),
            "scheduling deepened d={d}, k={k}"
        );
        assert_eq!(
            schedule_depth(&scheduled),
            scheduled,
            "scheduling is not idempotent on d={d}, k={k}"
        );
    }
}

#[test]
fn verified_scheduled_pipeline_accepts_the_e10_sweep() {
    // Every stage (including schedule-depth) re-simulates its input and
    // output under VerifyEquivalence; the scheduled output additionally
    // still implements the k-Toffoli specification.
    for (d, k) in qudit_bench::experiments::e10_sweep(qudit_bench::experiments::Scale::Quick) {
        let dimension = Dimension::new(d).unwrap();
        let synthesis = KToffoli::new(dimension, k).unwrap().synthesize().unwrap();
        let width = synthesis.layout().width;
        let report = CompileOptions::new()
            .schedule(true)
            .verify(Verify::Exhaustive)
            .shape(dimension, width)
            .compiler()
            .compile(synthesis.circuit())
            .unwrap_or_else(|e| panic!("verification failed for d={d}, k={k}: {e}"));
        assert!(report.verification.is_verified());
        assert!(report.circuit.gates().iter().all(Gate::is_g_gate));
        assert_eq!(report.stats.last().unwrap().pass, "verify(schedule-depth)");

        let spec = MctSpec::toffoli(
            synthesis.layout().controls.clone(),
            synthesis.layout().target,
        );
        let mut rng = StdRng::seed_from_u64(11);
        let backend = SimBackend::Auto.resolve(&report.circuit);
        assert!(
            verify_mct_sampled_with(&report.circuit, &spec, 50, &mut rng, backend)
                .unwrap()
                .is_pass(),
            "scheduled circuit no longer implements the Toffoli for d={d}, k={k}"
        );
    }
}
